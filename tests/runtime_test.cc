#include <gtest/gtest.h>

#include <thread>

#include "graph/test_graphs.h"
#include "runtime/codec.h"
#include "runtime/message_bus.h"
#include "runtime/telemetry.h"

namespace fractal {
namespace {

TEST(CodecTest, SubgraphRoundTrip) {
  const Graph g = testgraphs::PaperFigure1();
  Subgraph s;
  s.PushVertexInduced(g, 0);
  s.PushVertexInduced(g, 1);
  s.PushVertexInduced(g, 4);

  ByteWriter writer;
  SubgraphCodec::EncodeSubgraph(s, &writer);
  ByteReader reader(writer.bytes());
  Subgraph decoded;
  ASSERT_TRUE(SubgraphCodec::DecodeSubgraph(&reader, &decoded));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(decoded, s);
  EXPECT_EQ(decoded.Depth(), s.Depth());

  // Pop works on the decoded subgraph (records survived).
  decoded.Pop();
  EXPECT_EQ(decoded.NumVertices(), 2u);
}

TEST(CodecTest, EmptySubgraphRoundTrip) {
  Subgraph s;
  ByteWriter writer;
  SubgraphCodec::EncodeSubgraph(s, &writer);
  ByteReader reader(writer.bytes());
  Subgraph decoded;
  ASSERT_TRUE(SubgraphCodec::DecodeSubgraph(&reader, &decoded));
  EXPECT_TRUE(decoded.Empty());
}

TEST(CodecTest, StolenWorkRoundTrip) {
  const Graph g = testgraphs::Complete(5);
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(g, 1);
  work.prefix.PushVertexInduced(g, 3);
  work.extension = 4;
  work.primitive_index = 2;

  const std::vector<uint8_t> bytes = SubgraphCodec::EncodeStolenWork(work);
  SubgraphEnumerator::StolenWork decoded;
  ASSERT_TRUE(SubgraphCodec::DecodeStolenWork(bytes, &decoded));
  EXPECT_EQ(decoded.prefix, work.prefix);
  EXPECT_EQ(decoded.extension, 4u);
  EXPECT_EQ(decoded.primitive_index, 2u);
}

TEST(CodecTest, RejectsCorruptedPayloads) {
  const Graph g = testgraphs::Complete(4);
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(g, 0);
  work.extension = 1;
  work.primitive_index = 1;
  std::vector<uint8_t> bytes = SubgraphCodec::EncodeStolenWork(work);

  SubgraphEnumerator::StolenWork decoded;
  // Truncated payload.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(SubgraphCodec::DecodeStolenWork(truncated, &decoded));
  // Trailing garbage.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(SubgraphCodec::DecodeStolenWork(padded, &decoded));
  // Inconsistent structure: claim 2 vertices but records say 1.
  std::vector<uint8_t> inconsistent = bytes;
  inconsistent[0] = 2;
  EXPECT_FALSE(SubgraphCodec::DecodeStolenWork(inconsistent, &decoded));
}

TEST(MessageBusTest, RequestReplyRoundTrip) {
  NetworkConfig network;
  network.latency_micros = 0;
  MessageBus bus(2, network);

  std::thread service([&bus] {
    auto token = bus.WaitForRequest(1);
    ASSERT_TRUE(token.has_value());
    bus.Reply(*token, std::vector<uint8_t>{1, 2, 3});
    // Next request gets "no work".
    token = bus.WaitForRequest(1);
    ASSERT_TRUE(token.has_value());
    bus.Reply(*token, std::nullopt);
    // Shutdown unblocks the final wait.
    EXPECT_FALSE(bus.WaitForRequest(1).has_value());
  });

  auto payload = bus.RequestSteal(0, 1);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(bus.RequestSteal(0, 1).has_value());
  bus.Shutdown();
  service.join();
}

TEST(MessageBusTest, ShutdownFailsFast) {
  MessageBus bus(2, NetworkConfig{.latency_micros = 0});
  bus.Shutdown();
  EXPECT_FALSE(bus.RequestSteal(0, 1).has_value());
  EXPECT_FALSE(bus.WaitForRequest(0).has_value());
}

TEST(MessageBusTest, ManyConcurrentRequesters) {
  MessageBus bus(3, NetworkConfig{.latency_micros = 0});
  std::atomic<int> served{0};
  std::thread service([&bus, &served] {
    while (auto token = bus.WaitForRequest(0)) {
      bus.Reply(*token, std::vector<uint8_t>{42});
      ++served;
    }
  });
  std::vector<std::thread> requesters;
  for (int i = 0; i < 8; ++i) {
    requesters.emplace_back([&bus, i] {
      for (int j = 0; j < 20; ++j) {
        auto payload = bus.RequestSteal(1 + (i % 2), 0);
        ASSERT_TRUE(payload.has_value());
      }
    });
  }
  for (auto& t : requesters) t.join();
  bus.Shutdown();
  service.join();
  EXPECT_EQ(served.load(), 160);
}

TEST(TelemetryTest, AggregatesAndMakespan) {
  StepTelemetry step;
  ThreadStats a;
  a.work_units = 100;
  a.extension_tests = 500;
  a.external_steals = 2;
  ThreadStats b;
  b.work_units = 40;
  b.internal_steals = 3;
  b.bytes_shipped = 128;
  step.threads = {a, b};

  EXPECT_EQ(step.TotalWorkUnits(), 140u);
  EXPECT_EQ(step.TotalExtensionTests(), 500u);
  EXPECT_EQ(step.TotalInternalSteals(), 3u);
  EXPECT_EQ(step.TotalExternalSteals(), 2u);
  EXPECT_EQ(step.TotalBytesShipped(), 128u);
  // Makespan without steal cost: max work = 100; with cost 30: 100+60=160.
  EXPECT_EQ(step.SimulatedMakespanUnits(0), 100u);
  EXPECT_EQ(step.SimulatedMakespanUnits(30), 160u);
  EXPECT_DOUBLE_EQ(step.IdealMakespanUnits(), 70.0);
  EXPECT_DOUBLE_EQ(step.BalanceEfficiency(0), 0.7);
  EXPECT_FALSE(step.ToTable().empty());
}

TEST(TelemetryTest, ExecutionTotals) {
  ExecutionTelemetry execution;
  StepTelemetry s1, s2;
  ThreadStats t;
  t.work_units = 10;
  t.extension_tests = 20;
  s1.threads = {t};
  s2.threads = {t, t};
  execution.steps = {s1, s2};
  EXPECT_EQ(execution.TotalWorkUnits(), 30u);
  EXPECT_EQ(execution.TotalExtensionTests(), 60u);
}

}  // namespace
}  // namespace fractal
