// Resilience suite: fault-injection framework, bounded steal RPCs, crash
// containment, degraded re-execution, and lineage-based partial recovery
// (DESIGN.md §7, §11). The load-bearing property throughout is *exactness*:
// under any fault plan, results must be bit-identical to a fault-free run —
// the from-scratch step model discards failed attempts wholesale, the
// claim-after-commit steal rendezvous guarantees no work unit is lost or
// duplicated by timeouts, and the salvage mode's ledger replays exactly the
// crashed worker's unfinished fractoid tasks, no more and no less.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "apps/cliques.h"
#include "apps/motifs.h"
#include "core/context.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "runtime/fault.h"
#include "runtime/message_bus.h"
#include "util/timer.h"

namespace fractal {
namespace {

// --- FaultPlan parsing and validation -------------------------------------

TEST(FaultPlanTest, ParseRoundTrip) {
  const char* spec =
      "crash:w=1,after=50;crash:w=0,p=0.001;crash-service:w=0,after=3;"
      "drop:p=0.05;delay:p=0.1,us=5000;slow:w=1,us=20";
  auto plan = FaultPlan::Parse(spec, 42);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().seed(), 42u);
  ASSERT_EQ(plan.value().specs().size(), 6u);
  EXPECT_EQ(plan.value().specs()[0].kind, FaultKind::kCrashWorker);
  EXPECT_EQ(plan.value().specs()[1].kind, FaultKind::kCrashWorkerRandom);
  EXPECT_EQ(plan.value().specs()[2].kind, FaultKind::kCrashStealService);
  EXPECT_EQ(plan.value().specs()[3].kind, FaultKind::kDropRequest);
  EXPECT_EQ(plan.value().specs()[4].kind, FaultKind::kDelayRequest);
  EXPECT_EQ(plan.value().specs()[5].kind, FaultKind::kSlowWorker);

  // ToString re-parses to the identical plan.
  auto reparsed = FaultPlan::Parse(plan.value().ToString(), 42);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().ToString(), plan.value().ToString());
}

TEST(FaultPlanTest, ParsesCrashInSalvage) {
  auto plan = FaultPlan::Parse("crash:w=2,after=30;crash-in-salvage:w=1,after=10", 9);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().specs().size(), 2u);
  EXPECT_EQ(plan.value().specs()[1].kind, FaultKind::kCrashWorkerInSalvage);
  EXPECT_EQ(plan.value().specs()[1].worker, 1);
  EXPECT_EQ(plan.value().specs()[1].after_units, 10u);

  auto reparsed = FaultPlan::Parse(plan.value().ToString(), 9);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().ToString(), plan.value().ToString());

  // Same target/threshold validation as plain crashes.
  EXPECT_FALSE(FaultPlan().CrashWorkerInSalvage(2, 10).Validate(2).ok());
  EXPECT_FALSE(FaultPlan().CrashWorkerInSalvage(0, 0).Validate(2).ok());
  EXPECT_TRUE(FaultPlan().CrashWorkerInSalvage(1, 10).Validate(2).ok());
}

TEST(FaultPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::Parse("explode:w=1", 0).ok());
  EXPECT_FALSE(FaultPlan::Parse("crash:w=banana", 0).ok());
  EXPECT_FALSE(FaultPlan::Parse("crash:", 0).ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:p=nope", 0).ok());
}

TEST(FaultPlanTest, ValidateChecksTargetsAndRates) {
  EXPECT_FALSE(FaultPlan().CrashWorker(2, 10).Validate(2).ok());
  EXPECT_TRUE(FaultPlan().CrashWorker(1, 10).Validate(2).ok());
  // A deterministic crash at unit 0 would never fire (units are 1-based).
  EXPECT_FALSE(FaultPlan().CrashWorker(0, 0).Validate(2).ok());
  EXPECT_FALSE(FaultPlan().DropStealRequests(1.5).Validate(2).ok());
  EXPECT_FALSE(FaultPlan().SlowWorker(0, -5).Validate(2).ok());
}

// --- FaultInjector semantics ----------------------------------------------

TEST(FaultInjectorTest, DeterministicCrashFiresExactlyOnceUnderRaces) {
  FaultInjector injector(FaultPlan().CrashWorker(0, 100));
  injector.BeginStep();
  // Many threads race through the work-unit hook; the unique fetch_add
  // numbering plus the fired-exchange must yield exactly one crash event.
  std::vector<std::thread> threads;
  std::atomic<uint64_t> false_returns{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&injector, &false_returns] {
      for (int j = 0; j < 1000; ++j) {
        if (!injector.OnWorkUnit(0)) false_returns.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(injector.crash_events(), 1u);
  EXPECT_TRUE(injector.WorkerCrashed(0));
  EXPECT_FALSE(injector.CrashCause(0).empty());
  // Every unit consumed after the trigger observed the crash.
  EXPECT_GT(false_returns.load(), 0u);

  // Deterministic entries are one-shot across retries: the next step
  // attempt must not re-fire.
  injector.BeginStep();
  EXPECT_FALSE(injector.WorkerCrashed(0));
  for (int j = 0; j < 1000; ++j) injector.OnWorkUnit(0);
  EXPECT_EQ(injector.crash_events(), 1u);
  EXPECT_FALSE(injector.WorkerCrashed(0));
}

TEST(FaultInjectorTest, RandomCrashRearmsEachStep) {
  // p=1 defeats retries: the worker crashes again on every attempt.
  FaultInjector injector(FaultPlan(7).CrashWorkerRandomly(1, 1.0));
  for (int step = 0; step < 3; ++step) {
    injector.BeginStep();
    EXPECT_FALSE(injector.OnWorkUnit(1));
    EXPECT_TRUE(injector.WorkerCrashed(1));
  }
  EXPECT_EQ(injector.crash_events(), 3u);
}

TEST(FaultInjectorTest, SalvageCrashGatedOnSalvagePass) {
  FaultInjector injector(FaultPlan().CrashWorkerInSalvage(0, 5));
  injector.BeginStep();
  // Units consumed outside a salvage pass never advance the trigger.
  for (int j = 0; j < 100; ++j) EXPECT_TRUE(injector.OnWorkUnit(0));
  EXPECT_EQ(injector.crash_events(), 0u);
  EXPECT_FALSE(injector.WorkerCrashed(0));

  // The executor arms the entry around a salvage replay pass; the Nth
  // *replayed* unit fires it. BeginStep must not clear the arming (the
  // pass spans one RunStep).
  injector.SetSalvagePass(true);
  injector.BeginStep();
  for (int j = 0; j < 5; ++j) injector.OnWorkUnit(0);
  EXPECT_TRUE(injector.WorkerCrashed(0));
  EXPECT_EQ(injector.crash_events(), 1u);
  EXPECT_FALSE(injector.OnWorkUnit(0));
  EXPECT_FALSE(injector.CrashCause(0).empty());

  // One-shot across later passes and steps.
  injector.BeginStep();
  for (int j = 0; j < 100; ++j) injector.OnWorkUnit(0);
  EXPECT_EQ(injector.crash_events(), 1u);
}

TEST(FaultInjectorTest, StealServiceDeathIsSticky) {
  FaultInjector injector(FaultPlan().CrashStealService(0, 2));
  injector.BeginStep();
  EXPECT_TRUE(injector.OnStealRequestArrived(0));   // request 1 served
  EXPECT_TRUE(injector.OnStealRequestArrived(0));   // request 2 served
  EXPECT_FALSE(injector.OnStealRequestArrived(0));  // dead from now on
  injector.BeginStep();  // service death survives step retries
  EXPECT_FALSE(injector.OnStealRequestArrived(0));
}

// --- Bounded steal RPCs ----------------------------------------------------

TEST(StealDeadlineTest, RequestAgainstSilentVictimReturnsWithinDeadline) {
  NetworkConfig net;
  net.latency_micros = 0;
  net.request_timeout_micros = 5000;
  MessageBus bus(2, net);
  // Nobody services worker 1's inbox — the exact shape of a dead steal
  // service. The request must come back as kTimeout within the deadline
  // (plus scheduling slack), never hang.
  WallTimer timer;
  const StealReply reply = bus.RequestSteal(0, 1);
  const int64_t elapsed = timer.ElapsedMicros();
  EXPECT_EQ(reply.outcome, StealOutcome::kTimeout);
  EXPECT_GE(elapsed, net.request_timeout_micros);
  // Generous slack for CI schedulers; the point is "bounded, not hung".
  EXPECT_LT(elapsed, net.request_timeout_micros * 20);
  bus.Shutdown();
}

TEST(StealDeadlineTest, AbandonedRequestRefusesLateReply) {
  NetworkConfig net;
  net.latency_micros = 0;
  net.request_timeout_micros = 1000;
  MessageBus bus(2, net);
  std::thread requester([&bus] {
    EXPECT_EQ(bus.RequestSteal(0, 1).outcome, StealOutcome::kTimeout);
  });
  // Pick the request up well after the requester's deadline: the
  // claim-after-commit handshake must refuse the commit, so no work can be
  // claimed for a requester that is no longer waiting.
  auto token = bus.WaitForRequest(1);
  ASSERT_TRUE(token.has_value());
  requester.join();
  EXPECT_FALSE(bus.BeginReply(*token));
  bus.Reply(*token, std::nullopt);  // empty reply to an abandoned token: ok
  bus.Shutdown();
}

TEST(StealDeadlineTest, DroppedRequestBurnsDeadlineAndCounts) {
  NetworkConfig net;
  net.latency_micros = 0;
  net.request_timeout_micros = 2000;
  MessageBus bus(2, net);
  auto injector =
      std::make_shared<FaultInjector>(FaultPlan(3).DropStealRequests(1.0));
  injector->BeginStep();
  bus.SetFaultInjector(injector);
  const uint64_t dropped_before = obs::DroppedRequestsCounter().Value();
  EXPECT_EQ(bus.RequestSteal(0, 1).outcome, StealOutcome::kTimeout);
  EXPECT_GT(obs::DroppedRequestsCounter().Value(), dropped_before);
  bus.Shutdown();
}

TEST(StealDeadlineTest, CrashedWorkerEndpointRefusesInstantly) {
  NetworkConfig net;
  net.latency_micros = 0;
  net.request_timeout_micros = 1000000;  // 1s: a hang would be visible
  MessageBus bus(2, net);
  auto injector =
      std::make_shared<FaultInjector>(FaultPlan().CrashWorker(1, 1));
  injector->BeginStep();
  EXPECT_FALSE(injector->OnWorkUnit(1));  // crash worker 1
  bus.SetFaultInjector(injector);
  WallTimer timer;
  EXPECT_EQ(bus.RequestSteal(0, 1).outcome, StealOutcome::kNoWork);
  // Connection-refused semantics: far faster than the deadline.
  EXPECT_LT(timer.ElapsedMicros(), net.request_timeout_micros / 2);
  bus.Shutdown();
}

// --- End-to-end recovery ---------------------------------------------------

FractalGraph TestGraph(FractalContext& fctx) {
  return fctx.FromGraph(GenerateRandomGraph(30, 90, 1, 1, 4242));
}

ExecutionConfig TwoWorkers() {
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;
  return config;
}

TEST(RecoveryTest, DeadStealServiceNeverHangsTheStep) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  ExecutionConfig healthy = TwoWorkers();
  const uint64_t expected =
      graph.VFractoid().Expand(3).CountSubgraphs(healthy);

  ExecutionConfig faulty = TwoWorkers();
  faulty.network.request_timeout_micros = 2000;
  faulty.network.max_steal_retries = 2;
  faulty.network.retry_backoff_micros = 100;
  faulty.network.suspect_after_timeouts = 2;
  // Worker 1's steal service is dead from the first request, and worker 1
  // itself straggles so worker 0 is guaranteed to go stealing externally.
  faulty.fault_plan =
      FaultPlan().CrashStealService(1, 0).SlowWorker(1, 20);
  const uint64_t timeouts_before = obs::StealTimeoutsCounter().Value();
  WallTimer timer;
  const ExecutionResult result = graph.VFractoid().Expand(3).Execute(faulty);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.num_subgraphs, expected);
  EXPECT_EQ(result.steps_retried, 0u);  // no worker crash, only timeouts
  EXPECT_GT(obs::StealTimeoutsCounter().Value(), timeouts_before);
  // Bounded: timeouts resolve within the deadline budget, not by hanging.
  EXPECT_LT(timer.ElapsedSeconds(), 30.0);
  // The per-thread timeout stat surfaced in telemetry too.
  uint64_t stat_timeouts = 0;
  for (const auto& step : result.telemetry.steps) {
    for (const auto& t : step.threads) stat_timeouts += t.steal_timeouts;
  }
  EXPECT_GT(stat_timeouts, 0u);
}

TEST(RecoveryTest, DegradedReexecutionRunsOnSurvivors) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  ExecutionConfig healthy;
  healthy.num_workers = 3;
  healthy.threads_per_worker = 2;
  healthy.network.latency_micros = 1;
  const uint64_t expected =
      graph.VFractoid().Expand(3).CountSubgraphs(healthy);

  ClusterOptions options;
  options.num_workers = 3;
  options.threads_per_worker = 2;
  options.external_work_stealing = true;
  options.network.latency_micros = 1;
  Cluster cluster(options);

  ExecutionConfig faulty;
  faulty.cluster = &cluster;
  faulty.fault_plan = FaultPlan().CrashWorker(2, 30);
  const uint64_t degraded_before = obs::StepsDegradedCounter().Value();
  const ExecutionResult result = graph.VFractoid().Expand(3).Execute(faulty);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.num_subgraphs, expected);
  EXPECT_EQ(result.steps_retried, 1u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].worker, 2);

  // The crashed worker was excluded: the successful attempt ran on the two
  // survivors (W−1), visible in the live mask, the per-thread telemetry,
  // and the degraded-steps metric.
  EXPECT_EQ(cluster.num_live_workers(), 2u);
  ASSERT_EQ(result.telemetry.steps.size(), 1u);
  EXPECT_EQ(result.telemetry.steps[0].threads.size(), 4u);
  EXPECT_GT(obs::StepsDegradedCounter().Value(), degraded_before);
}

TEST(RecoveryTest, ExhaustedRetriesReturnStatusNotAbort) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  ExecutionConfig config = TwoWorkers();
  // p=1 random crash re-arms every attempt; keeping the crashed worker in
  // rotation guarantees every attempt fails until the budget is exhausted.
  config.fault_plan = FaultPlan(11).CrashWorkerRandomly(1, 1.0);
  config.retry.max_attempts = 2;
  config.retry.exclude_crashed_workers = false;
  const ExecutionResult result = graph.VFractoid().Expand(2).Execute(config);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result.steps_retried, 2u);
  EXPECT_EQ(result.failures.size(), 2u);
}

TEST(RecoveryTest, LastWorkerCrashIsFailedPrecondition) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  config.fault_plan = FaultPlan(5).CrashWorkerRandomly(0, 1.0);
  const ExecutionResult result = graph.VFractoid().Expand(2).Execute(config);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
}

// --- Lineage-based partial recovery (salvage) ------------------------------

void ExpectSameMotifs(const MotifsResult& actual,
                      const MotifsResult& expected) {
  EXPECT_EQ(actual.total, expected.total);
  ASSERT_EQ(actual.counts.size(), expected.counts.size());
  for (const auto& [pattern, count] : expected.counts) {
    const auto it = actual.counts.find(pattern);
    ASSERT_NE(it, actual.counts.end());
    EXPECT_EQ(it->second, count);
  }
}

// The acceptance bound of the salvage model: with a crash at 50% of the
// victim's fault-free work, the replay pass must cost well under 0.6x the
// from-scratch re-execution on the same fault plan, and the aggregation
// output must stay bit-exact.
TEST(SalvageTest, HalfwayCrashReplaysLessThanFromScratch) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  const ExecutionConfig healthy = TwoWorkers();
  const MotifsResult clean = CountMotifs(graph, 3, healthy);
  ASSERT_TRUE(clean.execution.status.ok()) << clean.execution.status;
  ASSERT_EQ(clean.execution.telemetry.steps.size(), 1u);
  const auto& clean_threads = clean.execution.telemetry.steps[0].threads;
  ASSERT_EQ(clean_threads.size(), 4u);
  // Worker 1 owns global threads 2 and 3 (two threads per worker).
  const uint64_t worker1_units =
      clean_threads[2].work_units + clean_threads[3].work_units;
  ASSERT_GT(worker1_units, 20u);
  const uint64_t crash_after = worker1_units / 2;

  // From-scratch recovery: the successful attempt re-enumerates the whole
  // step on the survivor.
  ExecutionConfig scratch = TwoWorkers();
  scratch.fault_plan = FaultPlan().CrashWorker(1, crash_after);
  const MotifsResult scratch_run = CountMotifs(graph, 3, scratch);
  ASSERT_TRUE(scratch_run.execution.status.ok())
      << scratch_run.execution.status;
  EXPECT_EQ(scratch_run.execution.steps_retried, 1u);
  EXPECT_EQ(scratch_run.execution.salvage_passes, 0u);
  EXPECT_EQ(scratch_run.execution.units_replayed, 0u);
  ASSERT_EQ(scratch_run.execution.telemetry.steps.size(), 1u);
  const uint64_t scratch_units =
      scratch_run.execution.telemetry.steps[0].TotalWorkUnits();
  ExpectSameMotifs(scratch_run, clean);

  // Salvage recovery: same crash, but only the tasks worker 1 left
  // unfinished are re-enumerated on the survivor.
  ExecutionConfig salvage = TwoWorkers();
  salvage.fault_plan = FaultPlan().CrashWorker(1, crash_after);
  salvage.retry.mode = RetryPolicy::Mode::kSalvage;
  const MotifsResult salvaged = CountMotifs(graph, 3, salvage);
  ASSERT_TRUE(salvaged.execution.status.ok()) << salvaged.execution.status;
  EXPECT_EQ(salvaged.execution.steps_retried, 1u);
  EXPECT_EQ(salvaged.execution.salvage_passes, 1u);
  EXPECT_GT(salvaged.execution.units_salvaged, 0u);
  EXPECT_GT(salvaged.execution.units_replayed, 0u);
  EXPECT_LT(salvaged.execution.units_replayed, (scratch_units * 6) / 10);
  ExpectSameMotifs(salvaged, clean);
}

// Property test: salvaged runs are bit-exact against fault-free runs for
// both aggregation output (motifs) and plain counting (cliques), across a
// sweep of graphs, crash targets, and crash points.
TEST(SalvageTest, SalvagedMotifsAndCliquesBitExact) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    FractalContext fctx;
    FractalGraph graph =
        fctx.FromGraph(GenerateRandomGraph(28, 80, 1, 1, seed * 7 + 1));
    ExecutionConfig baseline;
    baseline.num_workers = 3;
    baseline.threads_per_worker = 2;
    baseline.network.latency_micros = 1;

    ExecutionConfig salvage = baseline;
    salvage.fault_plan = FaultPlan().CrashWorker(
        static_cast<int32_t>(seed % 3), 20 + seed * 15);
    salvage.retry.mode = RetryPolicy::Mode::kSalvage;
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan '" +
                 salvage.fault_plan.ToString() + "'");

    const MotifsResult clean_motifs = CountMotifs(graph, 3, baseline);
    const MotifsResult salvaged_motifs = CountMotifs(graph, 3, salvage);
    ASSERT_TRUE(salvaged_motifs.execution.status.ok())
        << salvaged_motifs.execution.status;
    ExpectSameMotifs(salvaged_motifs, clean_motifs);

    EXPECT_EQ(CountCliques(graph, 4, salvage),
              CountCliques(graph, 4, baseline));
  }
}

// A crash-during-recovery plan that reliably fires both entries: crash the
// most loaded worker (per the clean run's telemetry) a quarter into its
// share so the replay frontier is large, then kill a survivor at its 3rd
// replayed unit.
struct NestedPlanFixture {
  MotifsResult clean;
  ExecutionConfig baseline;
  FaultPlan plan;

  explicit NestedPlanFixture(const FractalGraph& graph) {
    baseline.num_workers = 3;
    baseline.threads_per_worker = 2;
    baseline.network.latency_micros = 1;
    clean = CountMotifs(graph, 3, baseline);
    const auto& threads = clean.execution.telemetry.steps[0].threads;
    uint64_t worker_units[3] = {};
    for (uint32_t w = 0; w < 3; ++w) {
      worker_units[w] =
          threads[w * 2].work_units + threads[w * 2 + 1].work_units;
    }
    const uint32_t victim = static_cast<uint32_t>(
        std::max_element(worker_units, worker_units + 3) - worker_units);
    plan.CrashWorker(static_cast<int32_t>(victim), worker_units[victim] / 4)
        .CrashWorkerInSalvage(static_cast<int32_t>((victim + 1) % 3), 3);
  }
};

// Crash-during-recovery: a second worker dies mid-replay; the ledger
// prepares a nested salvage pass onto the remaining survivor, still exact.
TEST(SalvageTest, NestedCrashDuringSalvage) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  const NestedPlanFixture fx(graph);

  ExecutionConfig faulty = fx.baseline;
  faulty.fault_plan = fx.plan;
  faulty.retry.mode = RetryPolicy::Mode::kSalvage;
  faulty.retry.max_attempts = 4;
  const MotifsResult result = CountMotifs(graph, 3, faulty);
  ASSERT_TRUE(result.execution.status.ok()) << result.execution.status;
  EXPECT_EQ(result.execution.steps_retried, 2u);
  EXPECT_EQ(result.execution.salvage_passes, 2u);
  ExpectSameMotifs(result, fx.clean);
}

// When the salvage-pass budget runs out mid-recovery the step falls back to
// a from-scratch retry on the survivors — results must stay exact.
TEST(SalvageTest, FallsBackToScratchWhenPassBudgetExhausted) {
  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);
  const NestedPlanFixture fx(graph);

  ExecutionConfig faulty = fx.baseline;
  faulty.fault_plan = fx.plan;
  faulty.retry.mode = RetryPolicy::Mode::kSalvage;
  faulty.retry.max_attempts = 4;
  faulty.retry.max_salvage_passes = 1;
  const MotifsResult result = CountMotifs(graph, 3, faulty);
  ASSERT_TRUE(result.execution.status.ok()) << result.execution.status;
  EXPECT_EQ(result.execution.steps_retried, 2u);
  EXPECT_EQ(result.execution.salvage_passes, 1u);
  ExpectSameMotifs(result, fx.clean);
}

// --- Chaos sweep -----------------------------------------------------------

// Seeded random fault plans must all converge to bit-identical results.
// FRACTAL_CHAOS_SEEDS overrides the sweep width (ci.sh's chaos stage runs a
// wider fixed matrix than the default).
TEST(ChaosTest, RandomFaultPlansAreExact) {
  int num_seeds = 20;
  if (const char* env = std::getenv("FRACTAL_CHAOS_SEEDS")) {
    num_seeds = std::atoi(env);
    ASSERT_GT(num_seeds, 0);
  }

  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);

  ExecutionConfig baseline;
  baseline.num_workers = 3;
  baseline.threads_per_worker = 2;
  baseline.network.latency_micros = 1;
  const MotifsResult clean_motifs = CountMotifs(graph, 3, baseline);
  const uint64_t clean_cliques = CountCliques(graph, 4, baseline);

  for (int seed = 1; seed <= num_seeds; ++seed) {
    ExecutionConfig chaotic = baseline;
    // Tight deadline so dropped requests don't stall the sweep; delay
    // spikes (<= ~2.2ms) can exceed it, which only costs a retry.
    chaotic.network.request_timeout_micros = 3000;
    chaotic.network.max_steal_retries = 2;
    chaotic.network.retry_backoff_micros = 50;
    chaotic.network.suspect_after_timeouts = 2;
    chaotic.fault_plan =
        FaultPlan::Random(static_cast<uint64_t>(seed), 3);
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan '" +
                 chaotic.fault_plan.ToString() + "'");

    const MotifsResult motifs = CountMotifs(graph, 3, chaotic);
    EXPECT_EQ(motifs.total, clean_motifs.total);
    ASSERT_EQ(motifs.counts.size(), clean_motifs.counts.size());
    for (const auto& [pattern, count] : clean_motifs.counts) {
      const auto it = motifs.counts.find(pattern);
      ASSERT_NE(it, motifs.counts.end());
      EXPECT_EQ(it->second, count);
    }
    EXPECT_EQ(CountCliques(graph, 4, chaotic), clean_cliques);
  }
}

// The same sweep under salvage recovery: every random plan — including the
// crash + crash-during-recovery composites Random() generates — must
// converge to bit-identical results when retries replay from the ledger
// instead of re-running from scratch.
TEST(SalvageChaosTest, RandomFaultPlansAreExact) {
  int num_seeds = 12;
  if (const char* env = std::getenv("FRACTAL_CHAOS_SEEDS")) {
    num_seeds = std::atoi(env);
    ASSERT_GT(num_seeds, 0);
  }

  FractalContext fctx;
  FractalGraph graph = TestGraph(fctx);

  ExecutionConfig baseline;
  baseline.num_workers = 3;
  baseline.threads_per_worker = 2;
  baseline.network.latency_micros = 1;
  const MotifsResult clean_motifs = CountMotifs(graph, 3, baseline);
  const uint64_t clean_cliques = CountCliques(graph, 4, baseline);

  for (int seed = 1; seed <= num_seeds; ++seed) {
    ExecutionConfig chaotic = baseline;
    chaotic.network.request_timeout_micros = 3000;
    chaotic.network.max_steal_retries = 2;
    chaotic.network.retry_backoff_micros = 50;
    chaotic.network.suspect_after_timeouts = 2;
    chaotic.retry.mode = RetryPolicy::Mode::kSalvage;
    chaotic.retry.max_attempts = 4;
    chaotic.fault_plan =
        FaultPlan::Random(static_cast<uint64_t>(seed), 3);
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan '" +
                 chaotic.fault_plan.ToString() + "'");

    const MotifsResult motifs = CountMotifs(graph, 3, chaotic);
    ASSERT_TRUE(motifs.execution.status.ok()) << motifs.execution.status;
    ExpectSameMotifs(motifs, clean_motifs);
    EXPECT_EQ(CountCliques(graph, 4, chaotic), clean_cliques);
  }
}

}  // namespace
}  // namespace fractal
