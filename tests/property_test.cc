// Cross-cutting property tests: invariants that must hold for every random
// instance — determinism across cluster shapes, result-set consistency
// between output operators, anti-monotonicity of MNI support, reduction
// soundness, canonicalization algebra.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>

#include "apps/cliques.h"
#include "enumerate/reference_extension.h"
#include "apps/fsm.h"
#include "apps/keyword_search.h"
#include "apps/motifs.h"
#include "apps/queries.h"
#include "graph/generators.h"
#include "graph/graph_reduce.h"
#include "pattern/canonical.h"
#include "pattern/dfs_code.h"
#include "tests/brute_force.h"
#include "util/random.h"

namespace fractal {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1001, 1002, 1003, 1004));

TEST_P(SeededProperty, CountsIdenticalAcrossRepeatedRuns) {
  const Graph g = GenerateRandomGraph(40, 140, 1, 1, GetParam());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;
  const uint64_t first = graph.VFractoid().Expand(3).CountSubgraphs(config);
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(config), first);
  }
}

TEST_P(SeededProperty, CollectedSubgraphsMatchCountAndAreDistinct) {
  const Graph g = GenerateRandomGraph(25, 70, 1, 1, GetParam());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;
  const uint64_t count = graph.VFractoid().Expand(3).CountSubgraphs(config);
  const auto collected =
      graph.VFractoid().Expand(3).CollectSubgraphs(config);
  EXPECT_EQ(collected.size(), count);
  std::set<std::vector<VertexId>> distinct;
  for (const Subgraph& s : collected) {
    std::vector<VertexId> vertices(s.Vertices().begin(), s.Vertices().end());
    std::sort(vertices.begin(), vertices.end());
    EXPECT_TRUE(distinct.insert(vertices).second) << s.ToString();
  }
}

TEST_P(SeededProperty, MaxCollectedCapRespected) {
  const Graph g = GenerateRandomGraph(25, 70, 1, 1, GetParam());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  config.max_collected_subgraphs = 7;
  const auto collected = graph.VFractoid().Expand(2).CollectSubgraphs(config);
  EXPECT_LE(collected.size(), 7u);
}

TEST_P(SeededProperty, MniSupportIsAntiMonotone) {
  // Every frequent pattern's sub-patterns (one edge removed, still
  // connected) must have at least its support.
  const Graph g = GenerateRandomGraph(14, 30, 2, 1, GetParam());
  const auto all_supports = brute::FsmFrequentPatterns(g, 1, 3);
  for (const auto& [pattern, support] : all_supports) {
    if (pattern.NumEdges() < 2) continue;
    for (const PatternEdge& removed : pattern.Edges()) {
      Pattern sub;
      for (uint32_t v = 0; v < pattern.NumVertices(); ++v) {
        sub.AddVertex(pattern.VertexLabel(v));
      }
      for (const PatternEdge& e : pattern.Edges()) {
        if (e == removed) continue;
        sub.AddEdge(e.src, e.dst, e.label);
      }
      if (!sub.IsConnected()) continue;
      // Drop isolated vertices (edge-induced subpattern).
      Pattern trimmed;
      std::vector<int32_t> remap(sub.NumVertices(), -1);
      for (uint32_t v = 0; v < sub.NumVertices(); ++v) {
        if (sub.Degree(v) > 0) {
          remap[v] = trimmed.AddVertex(sub.VertexLabel(v));
        }
      }
      for (const PatternEdge& e : sub.Edges()) {
        trimmed.AddEdge(remap[e.src], remap[e.dst], e.label);
      }
      const Pattern canonical_sub = CanonicalForm(trimmed).pattern;
      const auto it = all_supports.find(canonical_sub);
      ASSERT_NE(it, all_supports.end())
          << "sub-pattern missing: " << canonical_sub.ToString();
      EXPECT_GE(it->second, support)
          << pattern.ToString() << " vs " << canonical_sub.ToString();
    }
  }
}

TEST_P(SeededProperty, ReductionNeverAddsOrLosesSurvivingStructure) {
  const Graph g = GenerateRandomGraph(30, 90, 3, 2, GetParam());
  // Keep even-labeled vertices.
  const Graph reduced = ReduceGraph(
      g, [](const Graph& graph, VertexId v) {
        return graph.VertexLabel(v) % 2 == 0;
      },
      nullptr);
  for (EdgeId e = 0; e < reduced.NumEdges(); ++e) {
    const EdgeEndpoints& ends = reduced.Endpoints(e);
    // Every surviving edge existed in the original with the same label.
    const auto original = g.EdgeBetween(ends.src, ends.dst);
    ASSERT_TRUE(original.has_value());
    EXPECT_EQ(g.GetEdgeLabel(*original), reduced.GetEdgeLabel(e));
    EXPECT_EQ(g.VertexLabel(ends.src) % 2, 0u);
    EXPECT_EQ(g.VertexLabel(ends.dst) % 2, 0u);
  }
  // Every original edge between surviving vertices survives.
  uint32_t expected_edges = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints& ends = g.Endpoints(e);
    if (g.VertexLabel(ends.src) % 2 == 0 &&
        g.VertexLabel(ends.dst) % 2 == 0) {
      ++expected_edges;
    }
  }
  EXPECT_EQ(reduced.NumEdges(), expected_edges);
}

TEST_P(SeededProperty, ReductionIsIdempotent) {
  const Graph g = GenerateRandomGraph(30, 80, 2, 1, GetParam());
  auto keep = [](const Graph& /*graph*/, VertexId v) { return v % 3 != 0; };
  const Graph once = ReduceGraph(g, keep, nullptr);
  const Graph twice = ReduceGraph(once, keep, nullptr);
  EXPECT_EQ(once.NumEdges(), twice.NumEdges());
  EXPECT_EQ(once.NumActiveVertices(), twice.NumActiveVertices());
}

TEST_P(SeededProperty, QueryMatchesAreActualMatches) {
  const Graph g = GenerateRandomGraph(15, 40, 1, 1, GetParam());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  Pattern diamond = Pattern::CyclePattern(4);
  diamond.AddEdge(0, 2);
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  const auto matches =
      QueryFractoid(graph, diamond).CollectSubgraphs(config);
  const Pattern canonical_query = CanonicalForm(diamond).pattern;
  for (const Subgraph& match : matches) {
    EXPECT_EQ(match.NumVertices(), 4u);
    EXPECT_EQ(match.NumEdges(), 5u);
    EXPECT_EQ(CanonicalForm(match.QuickPattern(g)).pattern, canonical_query);
  }
  EXPECT_EQ(matches.size(), brute::CountPatternMatches(g, diamond));
}

TEST_P(SeededProperty, DfsCodeFixedPoint) {
  // The minimum DFS code of the pattern rebuilt from a minimum DFS code is
  // that same code (canonical representatives are fixed points).
  SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t n = 2 + rng.NextBounded(5);
    Pattern p;
    for (uint32_t i = 0; i < n; ++i) {
      p.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    for (uint32_t i = 1; i < n; ++i) {
      p.AddEdge(i, static_cast<uint32_t>(rng.NextBounded(i)));
    }
    const DfsCode code = MinDfsCode(p);
    EXPECT_EQ(MinDfsCode(PatternFromDfsCode(code)), code);
  }
}

TEST_P(SeededProperty, CanonicalOrbitsPartitionPositions) {
  SplitMix64 rng(GetParam() * 31);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t n = 2 + rng.NextBounded(4);
    Pattern p;
    for (uint32_t i = 0; i < n; ++i) p.AddVertex(0);
    for (uint32_t i = 1; i < n; ++i) {
      p.AddEdge(i, static_cast<uint32_t>(rng.NextBounded(i)));
    }
    const CanonicalResult canonical = CanonicalForm(p);
    ASSERT_EQ(canonical.orbit.size(), n);
    for (uint32_t position = 0; position < n; ++position) {
      const uint32_t representative = canonical.orbit[position];
      EXPECT_LE(representative, position);
      EXPECT_EQ(canonical.orbit[representative], representative);
    }
    // Positions in one orbit have equal degrees and labels.
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (canonical.orbit[a] == canonical.orbit[b]) {
          EXPECT_EQ(canonical.pattern.Degree(a), canonical.pattern.Degree(b));
          EXPECT_EQ(canonical.pattern.VertexLabel(a),
                    canonical.pattern.VertexLabel(b));
        }
      }
    }
  }
}

TEST_P(SeededProperty, KeywordSearchReductionInvariance) {
  const Graph g = AttachKeywords(
      GenerateRandomGraph(50, 120, 1, 1, GetParam()), 30, 1, 3, 2.0,
      GetParam() + 7);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  SplitMix64 rng(GetParam());
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<uint32_t> query = {
        static_cast<uint32_t>(rng.NextBounded(10)),
        static_cast<uint32_t>(10 + rng.NextBounded(10))};
    const auto full = RunKeywordSearch(graph, query, false, config);
    const auto reduced = RunKeywordSearch(graph, query, true, config);
    EXPECT_EQ(full.num_matches, reduced.num_matches);
    EXPECT_LE(reduced.extension_cost, full.extension_cost);
  }
}

// ===== Extension-kernel differential sweep (DESIGN.md §8) ==================
// The fused set-algebra strategies in enumerate/extension.cc must be
// observationally identical to the pre-kernel reference strategies: the same
// extension sequence (order included, not just the same set) and the same
// extension-test (EC) charge, at every subgraph the enumeration can reach.
// Walks the full reference enumeration tree to `max_depth`, comparing
// ComputeExtensions output at every node.
void DifferentialSweep(const Graph& g, const ExtensionStrategy& kernel,
                       const ExtensionStrategy& reference,
                       uint32_t max_depth) {
  ExtensionContext kernel_ctx;
  ExtensionContext reference_ctx;
  Subgraph kernel_sub;
  Subgraph reference_sub;
  std::vector<uint32_t> kernel_out;
  std::vector<uint32_t> reference_out;
  std::function<void(uint32_t)> recurse = [&](uint32_t depth) {
    kernel.ComputeExtensions(g, kernel_sub, kernel_ctx, &kernel_out);
    reference.ComputeExtensions(g, reference_sub, reference_ctx,
                                &reference_out);
    ASSERT_EQ(kernel_out, reference_out) << "at " << kernel_sub.ToString();
    ASSERT_EQ(kernel_ctx.extension_tests, reference_ctx.extension_tests)
        << "EC diverged at " << kernel_sub.ToString();
    if (depth == max_depth) return;
    const std::vector<uint32_t> extensions = kernel_out;  // out is reused
    for (const uint32_t extension : extensions) {
      kernel.Apply(g, extension, &kernel_sub);
      reference.Apply(g, extension, &reference_sub);
      recurse(depth + 1);
      kernel.Undo(g, &kernel_sub);
      reference.Undo(g, &reference_sub);
      if (::testing::Test::HasFatalFailure()) return;
    }
  };
  recurse(0);
}

/// Random graph with a guaranteed hub: vertex 0 is connected to everything,
/// so its degree crosses the adjacency-bitmap threshold (max(64, |V|/64))
/// and the kernel strategies exercise the bitmap filtering paths.
Graph RandomGraphWithHub(uint32_t extra_edges, uint64_t seed) {
  constexpr uint32_t kVertices = 80;
  GraphBuilder builder;
  SplitMix64 rng(seed);
  for (uint32_t v = 0; v < kVertices; ++v) {
    builder.AddVertex(static_cast<Label>(rng.NextBounded(3)));
  }
  for (uint32_t v = 1; v < kVertices; ++v) builder.AddEdge(0, v);
  uint32_t added = 0;
  while (added < extra_edges) {
    const VertexId u = 1 + static_cast<VertexId>(rng.NextBounded(kVertices - 1));
    const VertexId v = 1 + static_cast<VertexId>(rng.NextBounded(kVertices - 1));
    if (u == v || builder.HasEdge(u, v)) continue;
    builder.AddEdge(u, v, static_cast<Label>(rng.NextBounded(2)));
    ++added;
  }
  return std::move(builder).Build();
}

TEST_P(SeededProperty, KernelVertexExtensionsMatchReference) {
  const Graph g = GenerateRandomGraph(24, 70, 3, 2, GetParam());
  DifferentialSweep(g, VertexInducedStrategy{},
                    ReferenceVertexInducedStrategy{}, 3);
}

TEST_P(SeededProperty, KernelEdgeExtensionsMatchReference) {
  const Graph g = GenerateRandomGraph(18, 40, 3, 2, GetParam());
  DifferentialSweep(g, EdgeInducedStrategy{}, ReferenceEdgeInducedStrategy{},
                    3);
}

TEST_P(SeededProperty, KernelKClistExtensionsMatchReference) {
  const Graph g = GenerateRandomGraph(24, 120, 1, 1, GetParam());
  DifferentialSweep(g, KClistStrategy{}, ReferenceKClistStrategy{}, 4);
}

TEST_P(SeededProperty, KernelExtensionsMatchReferenceWithHub) {
  const Graph g = RandomGraphWithHub(160, GetParam());
  ASSERT_GT(g.NumHubs(), 0u) << "test graph must exercise the hub bitmaps";
  DifferentialSweep(g, VertexInducedStrategy{},
                    ReferenceVertexInducedStrategy{}, 2);
  DifferentialSweep(g, KClistStrategy{}, ReferenceKClistStrategy{}, 3);
}

TEST_P(SeededProperty, KernelExtensionsMatchReferenceUnderReduction) {
  const Graph g = GenerateRandomGraph(26, 80, 3, 2, GetParam());
  // Graph-reduction mask: only even-index vertices survive, so the root
  // extension sets must honor the active mask identically.
  const Graph reduced = ReduceGraph(
      g, [](const Graph&, VertexId v) { return v % 2 == 0; }, nullptr);
  ASSERT_LT(reduced.NumActiveVertices(), reduced.NumVertices());
  DifferentialSweep(reduced, VertexInducedStrategy{},
                    ReferenceVertexInducedStrategy{}, 3);
  DifferentialSweep(reduced, EdgeInducedStrategy{},
                    ReferenceEdgeInducedStrategy{}, 3);
}

TEST(ExploreTest, ExploreZeroIsIdentity) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(GenerateRandomGraph(10, 20, 1, 1, 5));
  const Fractoid base = graph.VFractoid().Expand(1);
  EXPECT_EQ(base.Explore(0).primitives().size(), base.primitives().size());
}

TEST(ExploreTest, ExploreEquivalentToManualChaining) {
  const Graph g = GenerateRandomGraph(20, 50, 1, 1, 9);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  auto is_clique = [](const Subgraph& s, Computation&) {
    return s.NumEdges() == s.NumVertices() * (s.NumVertices() - 1) / 2;
  };
  const uint64_t explored = graph.VFractoid()
                                .Expand(1)
                                .Filter(is_clique)
                                .Explore(2)
                                .CountSubgraphs(config);
  const uint64_t manual = graph.VFractoid()
                              .Expand(1)
                              .Filter(is_clique)
                              .Expand(1)
                              .Filter(is_clique)
                              .Expand(1)
                              .Filter(is_clique)
                              .CountSubgraphs(config);
  EXPECT_EQ(explored, manual);
  EXPECT_EQ(explored, brute::CountCliques(g, 3));
}

TEST(DomainSupportTest, SingleEmbeddingAndMerge) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  Subgraph s;
  s.PushEdgeInduced(g, 0);
  const CanonicalResult canonical = CanonicalForm(s.QuickPattern(g));

  DomainSupport a(2);
  a.AddEmbedding(s, canonical);
  EXPECT_EQ(a.Support(), 1u);
  EXPECT_FALSE(a.HasEnoughSupport());

  DomainSupport b2(2);
  b2.AddEmbedding(s, canonical);
  a.Merge(std::move(b2));
  EXPECT_EQ(a.Support(), 1u);  // same vertices: domains don't grow
  EXPECT_GT(a.ApproxBytes(), 0u);
}

TEST(DomainSupportTest, DistinctEmbeddingsGrowDomains) {
  // Path graph with alternating labels: edges (0,1) and (2,3) share the
  // 0-1 labeled edge pattern.
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddVertex(0);
  builder.AddVertex(1);
  const EdgeId e0 = builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const EdgeId e2 = builder.AddEdge(2, 3);
  const Graph g = std::move(builder).Build();

  DomainSupport support(2);
  for (const EdgeId e : {e0, e2}) {
    Subgraph s;
    s.PushEdgeInduced(g, e);
    support.AddEmbedding(s, CanonicalForm(s.QuickPattern(g)));
  }
  EXPECT_EQ(support.Support(), 2u);
  EXPECT_TRUE(support.HasEnoughSupport());
}

TEST(StepCachingTest, ReExecutionSkipsEverythingWhenFinalIsAggregate) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(GenerateRandomGraph(15, 35, 1, 1, 3));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  auto fractoid = graph.VFractoid().Expand(2).Aggregate<uint64_t, uint64_t>(
      "total", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
      [](const Subgraph&, Computation&) -> uint64_t { return 1; },
      [](uint64_t& a, uint64_t&& b) { a += b; });
  const auto first = fractoid.Execute(config);
  EXPECT_EQ(first.steps_executed, 1u);
  const auto second = fractoid.Execute(config);
  EXPECT_EQ(second.steps_executed, 0u);  // fully served from cache
  const uint64_t first_total = *TypedStorage<uint64_t, uint64_t>(
                                    *first.aggregations.begin()->second)
                                    .Find(0);
  const uint64_t second_total = *TypedStorage<uint64_t, uint64_t>(
                                     *second.aggregations.begin()->second)
                                     .Find(0);
  EXPECT_EQ(second_total, first_total);
}

TEST(StepCachingTest, DisablingReuseRecomputes) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(GenerateRandomGraph(15, 35, 1, 1, 3));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  config.reuse_cached_aggregations = false;
  auto fractoid = graph.VFractoid().Expand(2).Aggregate<uint64_t, uint64_t>(
      "total", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
      [](const Subgraph&, Computation&) -> uint64_t { return 1; },
      [](uint64_t& a, uint64_t&& b) { a += b; });
  EXPECT_EQ(fractoid.Execute(config).steps_executed, 1u);
  EXPECT_EQ(fractoid.Execute(config).steps_executed, 1u);
}

}  // namespace
}  // namespace fractal
