#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/timer.h"

namespace fractal {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes;
  for (const Status& s :
       {InvalidArgumentError(""), NotFoundError(""), OutOfRangeError(""),
        ResourceExhaustedError(""), InternalError(""), UnimplementedError(""),
        FailedPreconditionError("")}) {
    codes.insert(s.code());
  }
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);

  StatusOr<int> error(NotFoundError("missing"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> value(std::make_unique<int>(7));
  ASSERT_TRUE(value.ok());
  std::unique_ptr<int> extracted = std::move(value).value();
  EXPECT_EQ(*extracted, 7);
}

TEST(ReturnIfErrorTest, PropagatesErrors) {
  auto fails = [] { return InternalError("boom"); };
  auto wrapper = [&]() -> Status {
    FRACTAL_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, SplitString) {
  const auto pieces = SplitString("a b\tc  d", " \t");
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[3], "d");
  EXPECT_TRUE(SplitString("", " ").empty());
  EXPECT_TRUE(SplitString("   ", " ").empty());
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(42), "42 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
}

TEST(RandomTest, DeterministicStreams) {
  SplitMix64 a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, BoundedStaysInRange) {
  SplitMix64 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t value = rng.NextBounded(10);
    EXPECT_LT(value, 10u);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RandomTest, DoubleInUnitInterval) {
  SplitMix64 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace fractal
