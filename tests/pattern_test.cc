#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "graph/generators.h"
#include "pattern/automorphism.h"
#include "pattern/canonical.h"
#include "pattern/dfs_code.h"
#include "pattern/pattern.h"
#include "util/random.h"

namespace fractal {
namespace {

TEST(PatternTest, BasicConstruction) {
  Pattern p;
  EXPECT_EQ(p.AddVertex(5), 0u);
  EXPECT_EQ(p.AddVertex(7), 1u);
  p.AddEdge(0, 1, 3);
  EXPECT_EQ(p.NumVertices(), 2u);
  EXPECT_EQ(p.NumEdges(), 1u);
  EXPECT_EQ(p.VertexLabel(0), 5u);
  EXPECT_EQ(p.VertexLabel(1), 7u);
  EXPECT_TRUE(p.IsAdjacent(0, 1));
  EXPECT_TRUE(p.IsAdjacent(1, 0));
  EXPECT_EQ(p.EdgeLabelBetween(1, 0), 3u);
  EXPECT_TRUE(p.IsConnected());
}

TEST(PatternTest, CliqueHelpers) {
  const Pattern k4 = Pattern::Clique(4);
  EXPECT_EQ(k4.NumVertices(), 4u);
  EXPECT_EQ(k4.NumEdges(), 6u);
  EXPECT_TRUE(k4.IsClique());
  EXPECT_TRUE(k4.IsConnected());

  const Pattern c5 = Pattern::CyclePattern(5);
  EXPECT_EQ(c5.NumEdges(), 5u);
  EXPECT_FALSE(c5.IsClique());
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(c5.Degree(v), 2u);

  const Pattern p3 = Pattern::PathPattern(3);
  EXPECT_EQ(p3.NumEdges(), 2u);
  const Pattern s4 = Pattern::StarPattern(4);
  EXPECT_EQ(s4.Degree(0), 3u);
}

TEST(PatternTest, DisconnectedDetected) {
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  EXPECT_FALSE(p.IsConnected());
}

TEST(PatternTest, PermutedRelabelsStructure) {
  Pattern p;
  p.AddVertex(1);
  p.AddVertex(2);
  p.AddVertex(3);
  p.AddEdge(0, 1, 9);
  p.AddEdge(1, 2, 8);
  const Pattern q = p.Permuted({2, 0, 1});
  EXPECT_EQ(q.VertexLabel(2), 1u);
  EXPECT_EQ(q.VertexLabel(0), 2u);
  EXPECT_EQ(q.VertexLabel(1), 3u);
  EXPECT_TRUE(q.IsAdjacent(2, 0));
  EXPECT_EQ(q.EdgeLabelBetween(2, 0), 9u);
  EXPECT_TRUE(q.IsAdjacent(0, 1));
  EXPECT_EQ(q.EdgeLabelBetween(0, 1), 8u);
  EXPECT_FALSE(q.IsAdjacent(1, 2));
}

TEST(CanonicalTest, PermutationReturnsSelfConsistentResult) {
  Pattern p = Pattern::CyclePattern(4);
  p.AddEdge(0, 2);
  const CanonicalResult canonical = CanonicalForm(p);
  EXPECT_EQ(canonical.pattern, p.Permuted(canonical.permutation));
}

TEST(CanonicalTest, InvariantUnderRelabeling) {
  SplitMix64 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    // Random small labeled pattern.
    const uint32_t n = 2 + rng.NextBounded(5);
    Pattern p;
    for (uint32_t i = 0; i < n; ++i) {
      p.AddVertex(static_cast<Label>(rng.NextBounded(3)));
    }
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (rng.NextBounded(100) < 55) {
          p.AddEdge(i, j, static_cast<Label>(rng.NextBounded(2)));
        }
      }
    }
    // Random permutation.
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (uint32_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
    }
    const Pattern q = p.Permuted(perm);
    EXPECT_EQ(CanonicalForm(p).pattern, CanonicalForm(q).pattern)
        << "p=" << p.ToString() << " q=" << q.ToString();
  }
}

TEST(CanonicalTest, DistinguishesNonIsomorphic) {
  const Pattern path = Pattern::PathPattern(4);
  const Pattern star = Pattern::StarPattern(4);
  EXPECT_EQ(path.NumEdges(), star.NumEdges());
  EXPECT_NE(CanonicalForm(path).pattern, CanonicalForm(star).pattern);
  EXPECT_FALSE(AreIsomorphic(path, star));
  EXPECT_TRUE(AreIsomorphic(path, path.Permuted({3, 1, 0, 2})));
}

TEST(CanonicalTest, LabelsMatter) {
  Pattern a;
  a.AddVertex(0);
  a.AddVertex(1);
  a.AddEdge(0, 1);
  Pattern b;
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  EXPECT_FALSE(AreIsomorphic(a, b));
  Pattern c;
  c.AddVertex(1);
  c.AddVertex(0);
  c.AddEdge(0, 1);
  EXPECT_TRUE(AreIsomorphic(a, c));
}

TEST(CanonicalTest, CacheHitsOnRepeatedQuickPatterns) {
  CanonicalPatternCache cache;
  const Pattern p = Pattern::CyclePattern(4);
  const CanonicalResult& first = cache.Canonicalize(p);
  const CanonicalResult& second = cache.Canonicalize(p);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.Misses(), 1u);
  EXPECT_EQ(cache.Hits(), 1u);
}

TEST(DfsCodeTest, TriangleCode) {
  const DfsCode code = MinDfsCode(Pattern::Clique(3));
  ASSERT_EQ(code.edges.size(), 3u);
  // (0,1)(1,2)(2,0): two forwards then the closing backward edge.
  EXPECT_TRUE(code.edges[0].IsForward());
  EXPECT_TRUE(code.edges[1].IsForward());
  EXPECT_FALSE(code.edges[2].IsForward());
}

TEST(DfsCodeTest, RoundTripThroughPattern) {
  SplitMix64 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const uint32_t n = 2 + rng.NextBounded(5);
    Pattern p;
    for (uint32_t i = 0; i < n; ++i) {
      p.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    // Random spanning tree to guarantee connectivity, then extra edges.
    for (uint32_t i = 1; i < n; ++i) {
      p.AddEdge(i, static_cast<uint32_t>(rng.NextBounded(i)),
                static_cast<Label>(rng.NextBounded(2)));
    }
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (!p.IsAdjacent(i, j) && rng.NextBounded(100) < 30) {
          p.AddEdge(i, j, static_cast<Label>(rng.NextBounded(2)));
        }
      }
    }
    const DfsCode code = MinDfsCode(p);
    const Pattern rebuilt = PatternFromDfsCode(code);
    EXPECT_TRUE(AreIsomorphic(p, rebuilt)) << p.ToString();
    // The minimum DFS code must be a canonical form: equal across all
    // members of the isomorphism class.
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::swap(perm[0], perm[n - 1]);
    EXPECT_EQ(MinDfsCode(p.Permuted(perm)), code) << p.ToString();
  }
}

TEST(DfsCodeTest, AgreesWithAdjacencyCanonicalization) {
  // The two canonicalization providers must induce the same equivalence
  // classes on random patterns.
  SplitMix64 rng(42);
  std::map<std::string, Pattern> dfs_class_representative;
  for (int trial = 0; trial < 150; ++trial) {
    const uint32_t n = 2 + rng.NextBounded(4);
    Pattern p;
    for (uint32_t i = 0; i < n; ++i) {
      p.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    for (uint32_t i = 1; i < n; ++i) {
      p.AddEdge(i, static_cast<uint32_t>(rng.NextBounded(i)));
    }
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (!p.IsAdjacent(i, j) && rng.NextBounded(100) < 40) p.AddEdge(i, j);
      }
    }
    const std::string dfs_key = MinDfsCode(p).ToString();
    const Pattern canonical = CanonicalForm(p).pattern;
    auto [it, inserted] =
        dfs_class_representative.emplace(dfs_key, canonical);
    if (!inserted) {
      EXPECT_EQ(it->second, canonical)
          << "DFS-code class split by adjacency canonicalization";
    }
  }
}

TEST(AutomorphismTest, KnownGroupSizes) {
  EXPECT_EQ(Automorphisms(Pattern::Clique(4)).size(), 24u);      // S4
  EXPECT_EQ(Automorphisms(Pattern::CyclePattern(5)).size(), 10u);  // D5
  EXPECT_EQ(Automorphisms(Pattern::PathPattern(4)).size(), 2u);
  EXPECT_EQ(Automorphisms(Pattern::StarPattern(5)).size(), 24u);  // S4 leaves
}

TEST(AutomorphismTest, LabelsBreakSymmetry) {
  Pattern p = Pattern::PathPattern(3);
  EXPECT_EQ(Automorphisms(p).size(), 2u);
  Pattern labeled;
  labeled.AddVertex(1);
  labeled.AddVertex(0);
  labeled.AddVertex(2);
  labeled.AddEdge(0, 1);
  labeled.AddEdge(1, 2);
  EXPECT_EQ(Automorphisms(labeled).size(), 1u);
}

TEST(SymmetryBreakingTest, CliqueGetsTotalOrder) {
  const auto conditions = SymmetryBreakingConditions(Pattern::Clique(4));
  // Breaking S4 requires fixing 3 orbits: 3 + 2 + 1 = 6 conditions.
  EXPECT_EQ(conditions.size(), 6u);
}

TEST(SymmetryBreakingTest, ExactlyOneRepresentativePerOrbit) {
  // For every pattern and every injective assignment of distinct ids to
  // positions, exactly one automorphic re-assignment satisfies the
  // conditions.
  for (const Pattern& p :
       {Pattern::Clique(3), Pattern::CyclePattern(4), Pattern::StarPattern(4),
        Pattern::PathPattern(4), Pattern::Clique(4)}) {
    const auto automorphisms = Automorphisms(p);
    const auto conditions = SymmetryBreakingConditions(p);
    // Assignment: position i -> id order[i] for a fixed distinct id set.
    std::vector<uint32_t> ids(p.NumVertices());
    std::iota(ids.begin(), ids.end(), 10);
    uint32_t satisfying = 0;
    for (const auto& automorphism : automorphisms) {
      // Re-assign: position i gets the id of position automorphism[i].
      bool ok = true;
      for (const SymmetryCondition& condition : conditions) {
        if (ids[automorphism[condition.smaller]] >=
            ids[automorphism[condition.larger]]) {
          ok = false;
          break;
        }
      }
      if (ok) ++satisfying;
    }
    EXPECT_EQ(satisfying, 1u) << p.ToString();
  }
}

}  // namespace
}  // namespace fractal
