// End-to-end check of the hot-path allocation discipline (DESIGN.md §9):
// after the per-step warm-up, full-cluster runs of the vertex-induced,
// edge-induced, and KClist strategies perform ZERO heap allocations in their
// steady-state DFS regions. FractoidStepTask arms an AllocGuard around each
// extension once a thread has consumed AllocGuard::warmup_units() work units
// in the step; these tests crank the global mode to kCount (assert the
// observed total is zero) and kAbort (completing at all is the assertion),
// and pin the ScratchArena's amortization story: pool misses depend on the
// DFS shape, not on how much work flows through it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "apps/cliques.h"
#include "core/context.h"
#include "graph/test_graphs.h"
#include "obs/metrics.h"
#include "util/alloc_guard.h"

namespace fractal {
namespace {

ExecutionConfig OneThread() {
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  return config;
}

ExecutionConfig SmallCluster() {
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  return config;
}

struct StrategyCounts {
  uint64_t vertex_induced = 0;
  uint64_t edge_induced = 0;
  uint64_t kclist = 0;

  bool operator==(const StrategyCounts&) const = default;
};

// One full cluster run per extension strategy. Graph sizes below are picked
// so a single thread consumes well over AllocGuard::warmup_units() (default
// 512) extensions per step, i.e. the guards actually arm.
StrategyCounts RunAllStrategies(const Graph& g, const ExecutionConfig& config) {
  StrategyCounts counts;
  {
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(g));
    counts.vertex_induced =
        graph.VFractoid().Expand(3).CountSubgraphs(config);
    counts.edge_induced = graph.EFractoid().Expand(2).CountSubgraphs(config);
    counts.kclist = CountCliquesOptimized(graph, 4, config);
  }
  return counts;
}

class HotPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!AllocGuard::Active()) {
      GTEST_SKIP() << "alloc-guard runtime compiled out";
    }
    prior_mode_ = AllocGuard::GlobalMode();
  }
  void TearDown() override {
    if (AllocGuard::Active()) AllocGuard::SetGlobalMode(prior_mode_);
  }

  AllocGuard::Mode prior_mode_ = AllocGuard::Mode::kOff;
};

TEST_F(HotPathTest, SteadyStateIsAllocationFreeUnderCountMode) {
  const Graph g = testgraphs::Complete(12);
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  const StrategyCounts expected = RunAllStrategies(g, OneThread());

  const uint64_t work_before = obs::WorkUnitsCounter().Value();
  const uint64_t guarded_before = AllocGuard::TotalGuardedAllocations();
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kCount);
  const StrategyCounts counted = RunAllStrategies(g, OneThread());
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  const uint64_t guarded = AllocGuard::TotalGuardedAllocations() -
                           guarded_before;
  const uint64_t work = obs::WorkUnitsCounter().Value() - work_before;

  EXPECT_EQ(counted, expected);
  // The workload must be big enough that the guard armed at all, otherwise
  // this test asserts nothing.
  ASSERT_GT(work, AllocGuard::warmup_units());
  EXPECT_EQ(guarded, 0u)
      << "steady-state heap allocations on the enumeration hot path";
}

TEST_F(HotPathTest, CompletesUnderAbortModeSingleThread) {
  const Graph g = testgraphs::Complete(12);
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  const StrategyCounts expected = RunAllStrategies(g, OneThread());

  AllocGuard::SetGlobalMode(AllocGuard::Mode::kAbort);
  // Surviving the runs is the assertion: any steady-state allocation on a
  // guarded thread aborts the process.
  const StrategyCounts aborted_mode = RunAllStrategies(g, OneThread());
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  EXPECT_EQ(aborted_mode, expected);
}

TEST_F(HotPathTest, CompletesUnderAbortModeWithStealingCluster) {
  const Graph g = testgraphs::Complete(13);
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  const StrategyCounts expected = RunAllStrategies(g, SmallCluster());

  AllocGuard::SetGlobalMode(AllocGuard::Mode::kAbort);
  const StrategyCounts aborted_mode = RunAllStrategies(g, SmallCluster());
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  EXPECT_EQ(aborted_mode, expected);
}

TEST_F(HotPathTest, ScratchMissesDependOnShapeNotWorkVolume) {
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kOff);
  // Same DFS shape (same strategies, same depths, same thread count) on a
  // small and a much larger graph: the arena pools warm up to the DFS's
  // peak concurrent lease count, which is a property of the shape. The
  // misses must NOT scale with the work volume.
  const uint64_t misses_before_small = obs::ScratchMissesCounter().Value();
  const uint64_t work_before_small = obs::WorkUnitsCounter().Value();
  RunAllStrategies(testgraphs::Complete(8), OneThread());
  const uint64_t misses_small =
      obs::ScratchMissesCounter().Value() - misses_before_small;
  const uint64_t work_small = obs::WorkUnitsCounter().Value() -
                              work_before_small;

  const uint64_t misses_before_large = obs::ScratchMissesCounter().Value();
  const uint64_t work_before_large = obs::WorkUnitsCounter().Value();
  RunAllStrategies(testgraphs::Complete(13), OneThread());
  const uint64_t misses_large =
      obs::ScratchMissesCounter().Value() - misses_before_large;
  const uint64_t work_large = obs::WorkUnitsCounter().Value() -
                              work_before_large;

  ASSERT_GT(work_large, 2 * work_small);
  EXPECT_EQ(misses_large, misses_small)
      << "scratch misses grew with work volume: the pool is not amortizing";
}

// Meaningful when the harness sets FRACTAL_ALLOC_GUARD (the ci.sh
// alloc-guard stage runs this binary with FRACTAL_ALLOC_GUARD=abort): the
// lazily parsed global mode must reflect the environment.
TEST_F(HotPathTest, EnvironmentSelectsGlobalMode) {
  const char* env = std::getenv("FRACTAL_ALLOC_GUARD");
  if (env == nullptr) GTEST_SKIP() << "FRACTAL_ALLOC_GUARD not set";
  const std::string mode(env);
  if (mode == "abort") {
    EXPECT_EQ(prior_mode_, AllocGuard::Mode::kAbort);
  } else if (mode == "count") {
    EXPECT_EQ(prior_mode_, AllocGuard::Mode::kCount);
  }
}

}  // namespace
}  // namespace fractal
