// Multi-tenant query scheduler tests (DESIGN.md §12): concurrent fractoid
// executions on one shared Cluster with weighted-fair step admission,
// cooperative cancellation, deadlines and admission control.
//
// Suites:
//   SchedulerTest         — runtime-level ScheduledQuery/QueryScheduler
//   AsyncExecutorTest     — core-level ExecuteFractoidAsync / QueryHandle
//   ExecutorContractTest  — same-fractoid-concurrently guard
//   SchedulerChaosTest    — fault injection × concurrent queries (the ci.sh
//                           scheduler stage runs this filter separately)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/executor.h"
#include "core/fractoid.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "runtime/fault.h"
#include "runtime/query_scheduler.h"
#include "util/status.h"

namespace fractal {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;
using std::chrono::steady_clock;

ClusterOptions SharedClusterOptions(uint32_t workers = 1,
                                    uint32_t threads = 4) {
  ClusterOptions options;
  options.num_workers = workers;
  options.threads_per_worker = threads;
  options.external_work_stealing = workers > 1;
  options.network.latency_micros = workers > 1 ? 1 : 0;
  return options;
}

/// A local filter that passes everything but sleeps per subgraph — makes a
/// query's steps take long enough to observe interleaving / cancel mid-step.
LocalFilterFn SleepyFilter(int micros) {
  return [micros](const Subgraph&, Computation&) {
    if (micros > 0) std::this_thread::sleep_for(microseconds(micros));
    return true;
  };
}

/// Builds a fresh `1 + rounds`-step workflow over `graph`: every round adds
/// an aggregation sync point (step boundary), an always-true aggregation
/// filter and one more expansion. Fresh per call — no cached steps, so two
/// builds with the same arguments enumerate identically.
Fractoid MultiStepFractoid(const FractalGraph& graph, uint32_t rounds,
                           int sleep_micros) {
  Fractoid f = graph.VFractoid().Expand(1).Filter(SleepyFilter(sleep_micros));
  for (uint32_t r = 0; r < rounds; ++r) {
    const std::string name = "count" + std::to_string(r);
    f = f.Aggregate<uint64_t, uint64_t>(
             name, [](const Subgraph&, Computation&) -> uint64_t { return 0; },
             [](const Subgraph&, Computation&) -> uint64_t { return 1; },
             [](uint64_t& a, uint64_t&& b) { a += b; })
            .FilterByAggregation<uint64_t, uint64_t>(
                name, [](const Subgraph&, Computation&,
                         const AggregationStorage<uint64_t, uint64_t>&) {
                  return true;
                })
            .Expand(1)
            .Filter(SleepyFilter(sleep_micros));
  }
  return f;
}

// --- Runtime-level scheduler behavior ------------------------------------

TEST(SchedulerTest, AdmissionOverflowReturnsResourceExhausted) {
  Cluster cluster(SharedClusterOptions());
  QuerySchedulerOptions options;
  options.max_active = 1;
  options.max_queued = 2;
  QueryScheduler scheduler(&cluster, options);
  const uint64_t rejected_before = obs::QueriesRejectedCounter().Value();

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  const auto body = [gate](QueryControl&) {
    gate.wait();
    return Status::Ok();
  };

  // One running (occupies the only driver) + two queued fills the scheduler.
  auto running = scheduler.Submit({.name = "blocker"}, body);
  ASSERT_TRUE(running.ok()) << running.status();
  // Wait until the driver picked it up, so the queue really has room for 2.
  while ((*running)->state() != ScheduledQuery::State::kRunning) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  auto queued1 = scheduler.Submit({.name = "waiter-1"}, body);
  auto queued2 = scheduler.Submit({.name = "waiter-2"}, body);
  ASSERT_TRUE(queued1.ok() && queued2.ok());

  // Backpressure: the fourth submission bounces.
  auto overflow = scheduler.Submit({.name = "overflow"}, body);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(obs::QueriesRejectedCounter().Value(), rejected_before + 1);

  release.set_value();
  EXPECT_TRUE((*running)->Join().ok());
  EXPECT_TRUE((*queued1)->Join().ok());
  EXPECT_TRUE((*queued2)->Join().ok());
  EXPECT_EQ(scheduler.stats().completed, 3u);
}

TEST(SchedulerTest, CancelWhileQueuedResolvesWithoutRunning) {
  Cluster cluster(SharedClusterOptions());
  QuerySchedulerOptions options;
  options.max_active = 1;
  QueryScheduler scheduler(&cluster, options);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> bodies_run{0};
  auto blocker = scheduler.Submit({.name = "blocker"}, [&](QueryControl&) {
    bodies_run.fetch_add(1);
    gate.wait();
    return Status::Ok();
  });
  ASSERT_TRUE(blocker.ok());
  auto victim = scheduler.Submit({.name = "victim"}, [&](QueryControl&) {
    bodies_run.fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(victim.ok());

  (*victim)->Cancel();
  release.set_value();

  const Status status = (*victim)->Join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_TRUE((*blocker)->Join().ok());
  // The cancelled query's body never ran: only the blocker's did.
  EXPECT_EQ(bodies_run.load(), 1);
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
}

TEST(SchedulerTest, DeadlineWhileQueuedResolvesDeadlineExceeded) {
  Cluster cluster(SharedClusterOptions());
  QuerySchedulerOptions options;
  options.max_active = 1;
  QueryScheduler scheduler(&cluster, options);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto blocker = scheduler.Submit(
      {.name = "blocker"},
      [gate](QueryControl&) {
        gate.wait();
        return Status::Ok();
      });
  ASSERT_TRUE(blocker.ok());
  while ((*blocker)->state() != ScheduledQuery::State::kRunning) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  auto doomed = scheduler.Submit({.name = "doomed", .deadline_ms = 20},
                                 [](QueryControl&) { return Status::Ok(); });
  ASSERT_TRUE(doomed.ok());
  std::this_thread::sleep_for(milliseconds(60));  // let the deadline lapse
  release.set_value();

  EXPECT_EQ((*doomed)->Join().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE((*blocker)->Join().ok());
  EXPECT_EQ((*doomed)->control().steps_run.load(), 0u);
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1u);
}

TEST(SchedulerTest, ShutdownResolvesOutstandingQueries) {
  Cluster cluster(SharedClusterOptions());
  std::shared_ptr<ScheduledQuery> queued;
  std::atomic<bool> queued_body_ran{false};
  {
    QuerySchedulerOptions options;
    options.max_active = 1;
    QueryScheduler scheduler(&cluster, options);
    // The blocker unblocks only when CancelAll flips its flag, so the sole
    // driver is guaranteed to still be busy when the destructor latches the
    // queued query's cancel (queue_ is cancelled before active_, and the
    // release/acquire pair on cancel_requested orders the two stores).
    auto blocker = scheduler.Submit(
        {.name = "blocker"},
        [](QueryControl& control) {
          while (!control.cancelled()) {
            std::this_thread::sleep_for(milliseconds(1));
          }
          return CancelledError("observed cancel");
        });
    ASSERT_TRUE(blocker.ok());
    auto waiting = scheduler.Submit(
        {.name = "queued"}, [&queued_body_ran](QueryControl&) {
          queued_body_ran = true;
          return Status::Ok();
        });
    ASSERT_TRUE(waiting.ok());
    queued = *waiting;
    // Destructor: CancelAll + drain. Must not hang, and must resolve the
    // queued handle even though its body never runs.
  }
  ASSERT_TRUE(queued->done());
  EXPECT_EQ(queued->Join().code(), StatusCode::kCancelled);
  EXPECT_FALSE(queued_body_ran.load());
}

// --- Core-level async execution on a shared cluster ----------------------

TEST(AsyncExecutorTest, ConcurrentQueriesMatchSerialExecution) {
  const Graph g = GenerateRandomGraph(40, 140, 1, 1, 91);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  // Serial ground truth, one fresh fractoid per shape.
  ExecutionConfig serial;
  serial.num_workers = 1;
  serial.threads_per_worker = 4;
  std::vector<uint64_t> expected;
  for (uint32_t rounds = 0; rounds < 3; ++rounds) {
    const ExecutionResult result =
        MultiStepFractoid(graph, rounds, 0).Execute(serial);
    ASSERT_TRUE(result.status.ok()) << result.status;
    expected.push_back(result.num_subgraphs);
  }

  Cluster cluster(SharedClusterOptions());
  QuerySchedulerOptions options;
  options.max_active = 3;
  QueryScheduler scheduler(&cluster, options);

  // Two interleaved batches: 6 queries over 3 shapes, all in flight at once.
  std::vector<Fractoid> fractoids;
  for (int batch = 0; batch < 2; ++batch) {
    for (uint32_t rounds = 0; rounds < 3; ++rounds) {
      fractoids.push_back(MultiStepFractoid(graph, rounds, 0));
    }
  }
  std::vector<QueryHandle> handles;
  ExecutionConfig config;
  for (size_t i = 0; i < fractoids.size(); ++i) {
    auto handle = ExecuteFractoidAsync(
        fractoids[i], config, scheduler,
        {.name = "q" + std::to_string(i)});
    ASSERT_TRUE(handle.ok()) << handle.status();
    handles.push_back(*std::move(handle));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    const ExecutionResult& result = handles[i].Wait();
    ASSERT_TRUE(result.status.ok()) << "query " << i << ": " << result.status;
    // Bit-exact against the serial run of the same shape.
    EXPECT_EQ(result.num_subgraphs, expected[i % 3]) << "query " << i;
  }
  EXPECT_EQ(scheduler.stats().completed, handles.size());
}

TEST(AsyncExecutorTest, TwoQueriesOverlapOnSharedCluster) {
  const Graph g = GenerateRandomGraph(60, 220, 1, 1, 17);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  Cluster cluster(SharedClusterOptions(/*workers=*/1, /*threads=*/4));
  QueryScheduler scheduler(&cluster, {.max_active = 2});

  // Multi-step + sleepy filters: each query's steps take tens of ms, so the
  // two alternate at the step-admission gate for a while.
  Fractoid a = MultiStepFractoid(graph, 3, 150);
  Fractoid b = MultiStepFractoid(graph, 3, 150);
  ExecutionConfig config;
  auto ha = ExecuteFractoidAsync(a, config, scheduler, {.name = "alpha"});
  auto hb = ExecuteFractoidAsync(b, config, scheduler, {.name = "beta"});
  ASSERT_TRUE(ha.ok() && hb.ok());

  // Poll for simultaneous progress: both unfinished while both have
  // completed at least one step (work_units advances at step barriers).
  bool overlapped = false;
  bool statusz_saw_both = false;
  while (!ha->done() || !hb->done()) {
    if (!ha->done() && !hb->done() &&
        ha->control().work_units.load() > 0 &&
        hb->control().work_units.load() > 0) {
      overlapped = true;
      const std::string statusz = cluster.RenderStatusz();
      if (statusz.find("alpha") != std::string::npos &&
          statusz.find("beta") != std::string::npos) {
        statusz_saw_both = true;
      }
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(overlapped)
      << "queries never made progress simultaneously on the shared cluster";
  EXPECT_TRUE(statusz_saw_both)
      << "/statusz never showed per-query rows for both in-flight queries";

  const ExecutionResult& ra = ha->Wait();
  const ExecutionResult& rb = hb->Wait();
  ASSERT_TRUE(ra.status.ok()) << ra.status;
  ASSERT_TRUE(rb.status.ok()) << rb.status;
  // Same shape, same graph: interleaving must not change the answer.
  EXPECT_EQ(ra.num_subgraphs, rb.num_subgraphs);
  EXPECT_EQ(ha->control().steps_run.load(), 4u);
  EXPECT_EQ(hb->control().steps_run.load(), 4u);
}

TEST(AsyncExecutorTest, CancellationMidStepUnwindsAndClusterStaysUsable) {
  const Graph g = GenerateRandomGraph(60, 220, 1, 1, 23);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  Cluster cluster(SharedClusterOptions());
  QueryScheduler scheduler(&cluster, {.max_active = 2});
  const uint64_t cancelled_before = obs::QueriesCancelledCounter().Value();

  Fractoid slow = MultiStepFractoid(graph, 4, 400);
  ExecutionConfig config;
  auto handle = ExecuteFractoidAsync(slow, config, scheduler,
                                     {.name = "cancel-me"});
  ASSERT_TRUE(handle.ok());

  // Let it get properly underway (at least one step barrier crossed), then
  // cancel mid-flight.
  while (handle->control().work_units.load() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  handle->Cancel();
  const ExecutionResult& result = handle->Wait();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled) << result.status;
  EXPECT_EQ(obs::QueriesCancelledCounter().Value(), cancelled_before + 1);

  // The unwound step left no residue: the same cluster keeps serving
  // fresh executions with exact counts.
  ExecutionConfig reuse;
  reuse.cluster = &cluster;
  const ExecutionResult after =
      MultiStepFractoid(graph, 1, 0).Execute(reuse);
  ASSERT_TRUE(after.status.ok()) << after.status;
  ExecutionConfig serial;
  serial.num_workers = 1;
  serial.threads_per_worker = 4;
  EXPECT_EQ(after.num_subgraphs,
            MultiStepFractoid(graph, 1, 0).Execute(serial).num_subgraphs);
}

TEST(AsyncExecutorTest, DeadlineExpiryReturnsDeadlineExceeded) {
  const Graph g = GenerateRandomGraph(60, 220, 1, 1, 29);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  Cluster cluster(SharedClusterOptions());
  QueryScheduler scheduler(&cluster, {.max_active = 1});
  const uint64_t expired_before =
      obs::QueriesDeadlineExceededCounter().Value();

  // Plenty of sleepy work units: far more than 40ms of enumeration.
  Fractoid slow = MultiStepFractoid(graph, 4, 500);
  ExecutionConfig config;
  auto handle = ExecuteFractoidAsync(slow, config, scheduler,
                                     {.name = "deadline", .deadline_ms = 40});
  ASSERT_TRUE(handle.ok());
  const ExecutionResult& result = handle->Wait();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
      << result.status;
  EXPECT_EQ(obs::QueriesDeadlineExceededCounter().Value(),
            expired_before + 1);
  EXPECT_TRUE(handle->control().DeadlineHit());
}

TEST(AsyncExecutorTest, RejectsForeignClusterAndPrewiredQuery) {
  Cluster cluster(SharedClusterOptions());
  Cluster other(SharedClusterOptions());
  QueryScheduler scheduler(&cluster);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(GenerateRandomGraph(10, 20, 1, 1, 3));
  const Fractoid fractoid = graph.VFractoid().Expand(1);

  ExecutionConfig foreign;
  foreign.cluster = &other;
  EXPECT_EQ(ExecuteFractoidAsync(fractoid, foreign, scheduler)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  QueryControl control;
  ExecutionConfig prewired;
  prewired.query = &control;
  EXPECT_EQ(ExecuteFractoidAsync(fractoid, prewired, scheduler)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// --- Same-fractoid concurrency contract ----------------------------------

TEST(ExecutorContractTest, SameFractoidConcurrentlyFailsPrecondition) {
  const Graph g = GenerateRandomGraph(60, 220, 1, 1, 41);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  Cluster cluster(SharedClusterOptions());
  QueryScheduler scheduler(&cluster, {.max_active = 2});

  Fractoid fractoid = MultiStepFractoid(graph, 3, 300);
  ExecutionConfig config;
  auto handle = ExecuteFractoidAsync(fractoid, config, scheduler,
                                     {.name = "first"});
  ASSERT_TRUE(handle.ok());
  // After the first step barrier the async run is provably inside the
  // executor, holding the fractoid's execution state.
  while (handle->control().work_units.load() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  // Same fractoid value, synchronous, on its own ephemeral cluster: the
  // shared cached-execution-state makes this unsupported.
  ExecutionConfig sync_config;
  sync_config.num_workers = 1;
  sync_config.threads_per_worker = 2;
  const ExecutionResult clash = fractoid.Execute(sync_config);
  EXPECT_EQ(clash.status.code(), StatusCode::kFailedPrecondition)
      << clash.status;

  const ExecutionResult& first = handle->Wait();
  EXPECT_TRUE(first.status.ok()) << first.status;

  // Once the first execution resolved, the fractoid is executable again.
  const ExecutionResult again = fractoid.Execute(sync_config);
  EXPECT_TRUE(again.status.ok()) << again.status;
}

// --- Chaos: fault injection × concurrent queries -------------------------

TEST(SchedulerChaosTest, WorkerCrashDuringConcurrentQueries) {
  const Graph g = GenerateRandomGraph(40, 140, 1, 1, 77);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  ExecutionConfig serial;
  serial.num_workers = 1;
  serial.threads_per_worker = 4;
  const uint64_t expected =
      MultiStepFractoid(graph, 2, 0).Execute(serial).num_subgraphs;

  ClusterOptions cluster_options = SharedClusterOptions(/*workers=*/2,
                                                        /*threads=*/2);
  Cluster cluster(cluster_options);

  for (int round = 0; round < 3; ++round) {
    QueryScheduler scheduler(&cluster, {.max_active = 3});
    std::vector<Fractoid> fractoids;
    std::vector<QueryHandle> handles;
    for (int i = 0; i < 3; ++i) {
      fractoids.push_back(MultiStepFractoid(graph, 2, 50));
    }
    for (int i = 0; i < 3; ++i) {
      ExecutionConfig config;
      if (i == 0) {
        // One tenant crashes worker 1 mid-step; per-query step retry must
        // recover it without disturbing the clean tenants.
        config.fault_plan = FaultPlan(round + 1).CrashWorker(1, 40);
      }
      auto handle = ExecuteFractoidAsync(
          fractoids[i], config, scheduler,
          {.name = (i == 0 ? "chaos" : "clean-" + std::to_string(i))});
      ASSERT_TRUE(handle.ok()) << handle.status();
      handles.push_back(*std::move(handle));
    }
    for (int i = 0; i < 3; ++i) {
      const ExecutionResult& result = handles[i].Wait();
      ASSERT_TRUE(result.status.ok())
          << "round " << round << " query " << i << ": " << result.status;
      EXPECT_EQ(result.num_subgraphs, expected)
          << "round " << round << " query " << i;
    }
    EXPECT_GT(handles[0].Wait().steps_retried, 0u)
        << "round " << round << ": fault plan never fired";
    // The crashed worker stays excluded until explicitly re-admitted.
    cluster.RestoreAllWorkers();
  }
}

}  // namespace
}  // namespace fractal
