// Tests for the extension features beyond the paper's core: graph
// algorithms (components, k-core, stats), the SNAP edge-list loader,
// file-based IO round trips, the sampling custom enumerator (Appendix B)
// and the estimation app built on it, and worker-crash recovery edges.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>

#include "apps/estimation.h"
#include "apps/queries.h"
#include "apps/motifs.h"
#include "enumerate/sampling.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/test_graphs.h"
#include "pattern/catalog.h"
#include "tests/brute_force.h"

namespace fractal {
namespace {

TEST(ComponentsTest, CountsAndSizes) {
  GraphBuilder b;
  for (int i = 0; i < 7; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  // 5, 6 isolated.
  const Graph g = std::move(b).Build();
  const ComponentsResult result = ConnectedComponents(g);
  EXPECT_EQ(result.num_components, 4u);
  EXPECT_EQ(result.largest_size, 3u);
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
  EXPECT_NE(result.component[5], result.component[6]);
}

TEST(ComponentsTest, ConnectedGraphIsOneComponent) {
  const Graph g = testgraphs::Petersen();
  const ComponentsResult result = ConnectedComponents(g);
  EXPECT_EQ(result.num_components, 1u);
  EXPECT_EQ(result.largest_size, 10u);
}

TEST(CoreDecompositionTest, KnownCores) {
  // Complete graph K5: every vertex has core 4.
  const CoreResult k5 = CoreDecomposition(testgraphs::Complete(5));
  EXPECT_EQ(k5.degeneracy, 4u);
  for (const uint32_t c : k5.core) EXPECT_EQ(c, 4u);

  // Path: all cores 1.
  const CoreResult path = CoreDecomposition(testgraphs::Path(6));
  EXPECT_EQ(path.degeneracy, 1u);
  for (const uint32_t c : path.core) EXPECT_EQ(c, 1u);

  // Star: center and leaves all core 1.
  const CoreResult star = CoreDecomposition(testgraphs::Star(8));
  EXPECT_EQ(star.degeneracy, 1u);

  // Triangle with a pendant: triangle cores 2, pendant core 1.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  const CoreResult tri = CoreDecomposition(std::move(b).Build());
  EXPECT_EQ(tri.core[0], 2u);
  EXPECT_EQ(tri.core[1], 2u);
  EXPECT_EQ(tri.core[2], 2u);
  EXPECT_EQ(tri.core[3], 1u);
}

TEST(CoreDecompositionTest, CoreIsAtMostDegree) {
  const Graph g = GenerateRandomGraph(60, 200, 1, 1, 55);
  const CoreResult result = CoreDecomposition(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(result.core[v], g.Degree(v));
  }
  // Degeneracy lower-bounds max clique size - 1.
  const uint64_t triangles = brute::CountCliques(g, 3);
  if (triangles > 0) {
    EXPECT_GE(result.degeneracy, 2u);
  }
}

TEST(GraphStatsTest, TrianglesAndClustering) {
  const GraphStats complete = ComputeStats(testgraphs::Complete(5));
  EXPECT_EQ(complete.triangles, 10u);
  EXPECT_DOUBLE_EQ(complete.clustering_coefficient, 1.0);
  EXPECT_EQ(complete.max_degree, 4u);

  const GraphStats petersen = ComputeStats(testgraphs::Petersen());
  EXPECT_EQ(petersen.triangles, 0u);
  EXPECT_DOUBLE_EQ(petersen.clustering_coefficient, 0.0);
  EXPECT_EQ(petersen.wedges, 30u);  // 10 vertices x C(3,2)
}

TEST(EdgeListTest, ParsesSparseIdsAndSkipsJunk) {
  const auto graph = ParseEdgeList(
      "# SNAP-ish header\n"
      "10 20\n"
      "20 30\n"
      "10 10\n"     // self loop: skipped
      "20 10\n"     // duplicate (reversed): skipped
      "1000000 10\n");
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->NumVertices(), 4u);  // 10, 20, 30, 1000000 compacted
  EXPECT_EQ(graph->NumEdges(), 3u);
}

TEST(EdgeListTest, RejectsMalformed) {
  EXPECT_FALSE(ParseEdgeList("1 2 3\n").ok());
  EXPECT_FALSE(ParseEdgeList("a b\n").ok());
  EXPECT_TRUE(ParseEdgeList("").ok());  // empty graph is fine
}

TEST(GraphIoFileTest, SaveAndLoadRoundTrip) {
  const Graph g = GenerateRandomGraph(30, 80, 3, 2, 123);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fractal_io_test.graph")
          .string();
  ASSERT_TRUE(SaveAdjacencyListFile(g, path).ok());
  auto loaded = LoadAdjacencyListFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadAdjacencyListFile(path).ok());  // gone
}

TEST(SamplingTest, ProbabilityOneIsExact) {
  const Graph g = GenerateRandomGraph(20, 50, 1, 1, 77);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  EXPECT_EQ(EstimateSubgraphCount(graph, 3, 1.0, 42, config),
            brute::CountConnectedVertexSets(g, 3));
}

TEST(SamplingTest, DeterministicAcrossClusterShapes) {
  const Graph g = GenerateRandomGraph(30, 90, 1, 1, 88);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig a;
  a.num_workers = 1;
  a.threads_per_worker = 1;
  ExecutionConfig b;
  b.num_workers = 2;
  b.threads_per_worker = 2;
  b.network.latency_micros = 1;
  // Hash-based sampling decisions are a pure function of (seed, prefix,
  // extension): identical results regardless of threads/steals.
  EXPECT_EQ(EstimateSubgraphCount(graph, 3, 0.6, 42, a),
            EstimateSubgraphCount(graph, 3, 0.6, 42, b));
}

TEST(SamplingTest, EstimatesWithinStatisticalTolerance) {
  PowerLawParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 5;
  params.triangle_closure = 0.4;
  params.seed = 99;
  const Graph g = GeneratePowerLaw(params);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  const uint64_t exact =
      graph.VFractoid().Expand(3).CountSubgraphs(config);
  ASSERT_GT(exact, 10000u);
  // Average several seeds to damp variance (still a statistical test; the
  // tolerance is generous and the seeds are fixed).
  uint64_t total = 0;
  constexpr int kTrials = 5;
  for (uint64_t seed = 1; seed <= kTrials; ++seed) {
    total += EstimateSubgraphCount(graph, 3, 0.7, seed, config);
  }
  const double mean = static_cast<double>(total) / kTrials;
  EXPECT_GT(mean, 0.6 * exact);
  EXPECT_LT(mean, 1.4 * exact);
}

TEST(SamplingTest, MotifEstimateCoversDominantShapes) {
  PowerLawParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 6;
  params.triangle_closure = 0.5;
  params.seed = 7;
  const Graph g = GeneratePowerLaw(params);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  const MotifsResult exact = CountMotifs(graph, 3, config);
  const EstimationResult estimate =
      EstimateMotifCounts(graph, 3, 0.8, 5, config);
  EXPECT_EQ(estimate.keep_probability, 0.8);
  EXPECT_LT(estimate.sampled_subgraphs, exact.total);
  // Both 3-vertex shapes (path, triangle) must appear with sane estimates.
  ASSERT_EQ(estimate.estimated_counts.size(), exact.counts.size());
  for (const auto& [pattern, exact_count] : exact.counts) {
    ASSERT_TRUE(estimate.estimated_counts.count(pattern));
    const double ratio =
        static_cast<double>(estimate.estimated_counts.at(pattern)) /
        exact_count;
    EXPECT_GT(ratio, 0.5) << pattern.ToString();
    EXPECT_LT(ratio, 1.6) << pattern.ToString();
  }
}

TEST(SamplingTest, WrapsPatternStrategyToo) {
  const Graph g = GenerateRandomGraph(20, 60, 1, 1, 13);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  auto sampled = std::make_shared<SamplingStrategy>(
      std::make_shared<PatternInducedStrategy>(Pattern::Clique(3)), 1.0, 1);
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  EXPECT_EQ(graph.CustomFractoid(sampled).Expand(3).CountSubgraphs(config),
            brute::CountCliques(g, 3));
}

TEST(CatalogTest, KnownConnectedGraphCounts) {
  // Number of connected unlabeled graphs on k vertices (OEIS A001349).
  EXPECT_EQ(ConnectedPatterns(1).size(), 1u);
  EXPECT_EQ(ConnectedPatterns(2).size(), 1u);
  EXPECT_EQ(ConnectedPatterns(3).size(), 2u);
  EXPECT_EQ(ConnectedPatterns(4).size(), 6u);
  EXPECT_EQ(ConnectedPatterns(5).size(), 21u);
  EXPECT_EQ(ConnectedPatterns(6).size(), 112u);
}

TEST(CatalogTest, RepresentativesAreCanonicalAndConnected) {
  for (const Pattern& pattern : ConnectedPatterns(5)) {
    EXPECT_TRUE(pattern.IsConnected());
    EXPECT_EQ(CanonicalForm(pattern).pattern, pattern);
  }
}

TEST(CatalogTest, ShapeNames) {
  EXPECT_EQ(PatternShapeName(Pattern::Clique(3)), "triangle");
  EXPECT_EQ(PatternShapeName(Pattern::CyclePattern(4)), "square");
  Pattern diamond = Pattern::CyclePattern(4);
  diamond.AddEdge(0, 2);
  // Name resolution is isomorphism-invariant.
  EXPECT_EQ(PatternShapeName(diamond), "diamond");
  EXPECT_EQ(PatternShapeName(diamond.Permuted({3, 1, 0, 2})), "diamond");
  // Unnamed shapes get a stable generic tag.
  const std::string tag = PatternShapeName(Pattern::CyclePattern(6));
  EXPECT_EQ(tag.substr(0, 2), "k6");
}

TEST(CatalogTest, MotifCountsCoverWholeCatalog) {
  // On a graph rich enough, every 4-vertex shape should occur, and shapes
  // found by motif counting must all be catalog members.
  PowerLawParams params;
  params.num_vertices = 200;
  params.edges_per_vertex = 6;
  params.triangle_closure = 0.5;
  params.seed = 3;
  const Graph g = GeneratePowerLaw(params);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  const MotifsResult motifs = CountMotifs(graph, 4, config);
  const auto catalog = ConnectedPatterns(4);
  EXPECT_EQ(motifs.counts.size(), catalog.size());
  for (const Pattern& shape : catalog) {
    EXPECT_TRUE(motifs.counts.count(shape)) << PatternShapeName(shape);
  }
}

TEST(InducedMatchingTest, AgreesWithMotifCounts) {
  // Induced matches of a pattern == that pattern's motif count.
  const Graph g = GenerateRandomGraph(16, 44, 1, 1, 17);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;
  const auto motif_counts = brute::MotifCounts(g, 4);
  for (const Pattern& shape : ConnectedPatterns(4)) {
    auto strategy = std::make_shared<PatternInducedStrategy>(
        shape, MatchSemantics::kInduced);
    const uint64_t induced = graph.CustomFractoid(strategy)
                                 .Expand(4)
                                 .CountSubgraphs(config);
    const auto it = motif_counts.find(shape);
    const uint64_t expected = it == motif_counts.end() ? 0 : it->second;
    EXPECT_EQ(induced, expected) << PatternShapeName(shape);
  }
}

TEST(InducedMatchingTest, InducedIsSubsetOfSubgraphMatches) {
  const Graph g = GenerateRandomGraph(14, 40, 1, 1, 19);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  const Pattern square = Pattern::CyclePattern(4);
  const uint64_t subgraph_matches =
      CountQueryMatches(graph, square, config);
  auto induced_strategy = std::make_shared<PatternInducedStrategy>(
      square, MatchSemantics::kInduced);
  const uint64_t induced_matches = graph.CustomFractoid(induced_strategy)
                                       .Expand(4)
                                       .CountSubgraphs(config);
  EXPECT_LE(induced_matches, subgraph_matches);
}

TEST(StreamingOutputTest, SinkSeesEverySubgraphOnce) {
  const Graph g = GenerateRandomGraph(20, 55, 1, 1, 23);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;

  std::mutex mu;
  std::set<std::vector<VertexId>> seen;
  uint64_t streamed = 0;
  const uint64_t count = graph.VFractoid().Expand(3).ForEachSubgraph(
      [&](const Subgraph& s) {
        std::vector<VertexId> vertices(s.Vertices().begin(),
                                       s.Vertices().end());
        std::sort(vertices.begin(), vertices.end());
        std::lock_guard<std::mutex> lock(mu);
        ++streamed;
        EXPECT_TRUE(seen.insert(vertices).second);
      },
      config);
  EXPECT_EQ(streamed, count);
  EXPECT_EQ(count, brute::CountConnectedVertexSets(g, 3));
}

}  // namespace
}  // namespace fractal
