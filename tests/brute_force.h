// Brute-force reference implementations used to validate the enumeration
// engine on small graphs: exhaustive subset/permutation enumeration with no
// shared code with the library's fast paths.
#ifndef FRACTAL_TESTS_BRUTE_FORCE_H_
#define FRACTAL_TESTS_BRUTE_FORCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace fractal {
namespace brute {

/// Number of connected induced subgraphs with exactly k vertices.
uint64_t CountConnectedVertexSets(const Graph& graph, uint32_t k);

/// Number of connected subgraphs with exactly k edges (edge-induced).
uint64_t CountConnectedEdgeSets(const Graph& graph, uint32_t k);

/// Number of k-vertex cliques.
uint64_t CountCliques(const Graph& graph, uint32_t k);

/// Canonical pattern -> count over all connected induced k-vertex subgraphs.
std::map<Pattern, uint64_t> MotifCounts(const Graph& graph, uint32_t k);

/// Number of distinct (non-induced) subgraphs isomorphic to `pattern`
/// (labels respected): injective label/edge-preserving maps divided by
/// |Aut(pattern)|.
uint64_t CountPatternMatches(const Graph& graph, const Pattern& pattern);

/// Frequent edge-induced patterns (canonical) with exact MNI supports,
/// considering patterns of at most `max_edges` edges.
std::map<Pattern, uint64_t> FsmFrequentPatterns(const Graph& graph,
                                                uint32_t min_support,
                                                uint32_t max_edges);

}  // namespace brute
}  // namespace fractal

#endif  // FRACTAL_TESTS_BRUTE_FORCE_H_
