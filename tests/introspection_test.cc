// Tests for the embedded exposition server (obs/exposition.h) and the
// Prometheus rendering behind /metricsz: round-trips over a raw client
// socket (no curl dependency), handler registration, query parsing, the
// histogram invariants of DumpPrometheus, and the Cluster /statusz wiring.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cluster.h"

namespace fractal {
namespace {

/// Minimal blocking HTTP client: sends `request_text` to 127.0.0.1:port and
/// returns everything the server wrote before closing the connection.
std::string RawRoundTrip(int port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n =
        ::send(fd, request_text.data() + sent, request_text.size() - sent, 0);
    EXPECT_GT(n, 0) << "send failed";
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& target) {
  return RawRoundTrip(
      port, "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::unique_ptr<obs::ExpositionServer> MustStart() {
  obs::ExpositionServer::Options options;
  options.port = 0;  // ephemeral: tests never collide on a fixed port
  auto server = obs::ExpositionServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).value();
}

TEST(ExpositionTest, ServesHealthzOnEphemeralPort) {
  auto server = MustStart();
  ASSERT_GT(server->port(), 0);
  const std::string response = Get(server->port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
}

TEST(ExpositionTest, IndexListsRegisteredEndpoints) {
  auto server = MustStart();
  const std::string response = Get(server->port(), "/");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  for (const char* endpoint :
       {"/healthz", "/metricsz", "/tracez", "/profilez"}) {
    EXPECT_NE(response.find(endpoint), std::string::npos)
        << "index is missing " << endpoint;
  }
}

TEST(ExpositionTest, UnknownPathIs404AndNonGetIs405) {
  auto server = MustStart();
  EXPECT_NE(Get(server->port(), "/nonexistent").find("HTTP/1.1 404"),
            std::string::npos);
  const std::string post = RawRoundTrip(
      server->port(), "POST /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
}

TEST(ExpositionTest, MalformedRequestIs400) {
  auto server = MustStart();
  const std::string response = RawRoundTrip(server->port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST(ExpositionTest, CustomEndpointSeesQueryParams) {
  auto server = MustStart();
  server->AddEndpoint(
      "/statusz", [](const obs::ExpositionServer::Request& request) {
        obs::ExpositionServer::Response response;
        response.body = "verbose=" + request.QueryParam("verbose", "0") +
                        " missing=" + request.QueryParam("nope", "fallback");
        return response;
      });
  const std::string response =
      Get(server->port(), "/statusz?verbose=2&other=x");
  EXPECT_NE(response.find("verbose=2 missing=fallback"), std::string::npos)
      << response;
}

TEST(ExpositionTest, MetricszIsPrometheusText) {
  obs::MetricsRegistry::Get().GetCounter("test.exposition_counter").Add(7);
  obs::MetricsRegistry::Get().GetHistogram("test.exposition_hist").Record(6);
  auto server = MustStart();
  const std::string response = Get(server->port(), "/metricsz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE fractal_test_exposition_counter_total "
                          "counter"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("# TYPE fractal_test_exposition_hist histogram"),
            std::string::npos);
  EXPECT_NE(response.find("fractal_test_exposition_hist_bucket{le="),
            std::string::npos);
}

// The histogram series must satisfy the Prometheus contract: buckets are
// cumulative in le order and the +Inf bucket equals _count (what
// tools/check_metricsz.py gates in CI, pinned here at unit level).
TEST(ExpositionTest, DumpPrometheusHistogramInvariants) {
  obs::Histogram& hist =
      obs::MetricsRegistry::Get().GetHistogram("test.prom_invariants");
  for (uint64_t value : {0, 1, 3, 9, 200, 201, 202}) hist.Record(value);
  const std::string text = obs::MetricsRegistry::Get().DumpPrometheus();
  std::istringstream lines(text);
  std::string line;
  std::vector<double> counts;
  double count_series = -1;
  bool saw_inf = false, saw_sum = false;
  while (std::getline(lines, line)) {
    if (line.find("fractal_test_prom_invariants_bucket") == 0) {
      counts.push_back(std::stod(line.substr(line.rfind(' ') + 1)));
      saw_inf = saw_inf || line.find("le=\"+Inf\"") != std::string::npos;
    } else if (line.find("fractal_test_prom_invariants_count") == 0) {
      count_series = std::stod(line.substr(line.rfind(' ') + 1));
    } else if (line.find("fractal_test_prom_invariants_sum") == 0) {
      saw_sum = true;
    }
  }
  ASSERT_FALSE(counts.empty());
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]) << "buckets must be cumulative";
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(saw_sum);
  EXPECT_EQ(counts.back(), count_series);
  // p50/p90/p99 companions are emitted as their own gauge families.
  EXPECT_NE(text.find("fractal_test_prom_invariants_p90"), std::string::npos);
}

TEST(ExpositionTest, TracezShowsCompletedSpans) {
  obs::Tracer::Get().Enable();
  {
    FRACTAL_TRACE_SPAN("test/tracez_outer");
    FRACTAL_TRACE_SPAN("test/tracez_inner");
  }
  auto server = MustStart();
  const std::string response = Get(server->port(), "/tracez");
  obs::Tracer::Get().Disable();
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("test/tracez_inner"), std::string::npos) << response;
}

TEST(ExpositionTest, ProfilezReturnsAWindow) {
  auto server = MustStart();
  // The serve thread registers itself with the profiler, so a short window
  // always has at least one sampleable thread; content may still be empty
  // ("# no samples") on a loaded host — only the shape is asserted.
  const std::string response =
      Get(server->port(), "/profilez?seconds=1&hz=50");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  const std::string spans =
      Get(server->port(), "/profilez?seconds=1&hz=50&view=spans");
  EXPECT_NE(spans.find("HTTP/1.1 200"), std::string::npos);
}

TEST(ExpositionTest, ServerStopsCleanlyWithPendingNothing) {
  // Start/stop churn: the self-pipe shutdown must join promptly.
  for (int i = 0; i < 3; ++i) {
    auto server = MustStart();
    EXPECT_GT(server->port(), 0);
  }
}

TEST(ClusterStatuszTest, ClusterServesStatuszAndRendersWorkers) {
  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 1;
  options.statusz_port = 0;
  Cluster cluster(options);
  ASSERT_GT(cluster.statusz_port(), 0);
  const std::string response = Get(cluster.statusz_port(), "/statusz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("fractal statusz"), std::string::npos) << response;
  EXPECT_NE(response.find("workers            2 x 1 threads"),
            std::string::npos);
  EXPECT_NE(response.find("live_workers       2/2"), std::string::npos);
  EXPECT_NE(response.find("worker 0"), std::string::npos);
  EXPECT_NE(response.find("worker 1"), std::string::npos);
  // The cluster's server carries the built-ins too.
  EXPECT_NE(Get(cluster.statusz_port(), "/metricsz").find("fractal_"),
            std::string::npos);
}

TEST(ClusterStatuszTest, RenderStatuszDirectlyTracksLiveMask) {
  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 1;
  Cluster cluster(options);  // no server: RenderStatusz works regardless
  EXPECT_EQ(cluster.statusz_port(), -1);
  cluster.MarkWorkerDead(1);
  const std::string statusz = cluster.RenderStatusz();
  EXPECT_NE(statusz.find("live_workers       1/2"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("live_mask          0x1"), std::string::npos);
}

TEST(ClusterStatuszTest, BindFailureIsNotFatal) {
  auto server = MustStart();  // occupy a port
  ClusterOptions options;
  options.num_workers = 1;
  options.threads_per_worker = 1;
  options.statusz_port = server->port();  // already taken
  Cluster cluster(options);  // must construct anyway (introspection is
                             // never load-bearing)
  EXPECT_EQ(cluster.statusz_port(), -1);
}

}  // namespace
}  // namespace fractal
