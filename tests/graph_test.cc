#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/adjacency.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/graph_reduce.h"
#include "graph/inverted_index.h"
#include "graph/test_graphs.h"
#include "util/random.h"

namespace fractal {
namespace {

TEST(GraphBuilderTest, BuildsCsr) {
  GraphBuilder b;
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddVertex(3);
  const EdgeId e0 = b.AddEdge(0, 1, 7);
  const EdgeId e1 = b.AddEdge(2, 1, 8);
  const Graph g = std::move(b).Build();

  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.VertexLabel(2), 3u);
  EXPECT_EQ(g.GetEdgeLabel(e0), 7u);
  EXPECT_EQ(g.GetEdgeLabel(e1), 8u);
  // Endpoints canonicalized: src < dst.
  EXPECT_EQ(g.Endpoints(e1).src, 1u);
  EXPECT_EQ(g.Endpoints(e1).dst, 2u);
  EXPECT_EQ(g.Endpoints(e1).Other(1), 2u);
  // Adjacency sorted.
  const auto neighbors = g.Neighbors(1);
  EXPECT_EQ(std::vector<VertexId>(neighbors.begin(), neighbors.end()),
            (std::vector<VertexId>{0, 2}));
  EXPECT_TRUE(g.IsAdjacent(0, 1));
  EXPECT_FALSE(g.IsAdjacent(0, 2));
  EXPECT_EQ(g.EdgeBetween(1, 2), e1);
  EXPECT_EQ(g.EdgeBetween(0, 2), std::nullopt);
  EXPECT_EQ(g.NumLabels(), 5u);  // vertex labels 1,2,3 + edge labels 7,8
  EXPECT_EQ(g.AdjacencySize(), 4u);
}

TEST(GraphTest, DensityMatchesFormula) {
  const Graph g = testgraphs::Complete(5);
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
  const Graph path = testgraphs::Path(5);
  EXPECT_DOUBLE_EQ(path.Density(), 2.0 * 4 / (5 * 4));
}

TEST(GraphTest, IncidentEdgesParallelToNeighbors) {
  const Graph g = testgraphs::Cycle(4);
  for (VertexId v = 0; v < 4; ++v) {
    const auto neighbors = g.Neighbors(v);
    const auto edges = g.IncidentEdges(v);
    ASSERT_EQ(neighbors.size(), edges.size());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_EQ(g.Endpoints(edges[i]).Other(v), neighbors[i]);
    }
  }
}

TEST(GraphIoTest, ParseAdjacencyList) {
  const std::string text =
      "# comment\n"
      "0 10 1 2\n"
      "1 11 0\n"
      "2 12 0 3:5\n"
      "3 13 2:5\n";
  auto graph = ParseAdjacencyList(text);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->NumVertices(), 4u);
  EXPECT_EQ(graph->NumEdges(), 3u);
  EXPECT_EQ(graph->VertexLabel(3), 13u);
  const auto edge = graph->EdgeBetween(2, 3);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(graph->GetEdgeLabel(*edge), 5u);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseAdjacencyList("5 0\n").ok());       // non-dense ids
  EXPECT_FALSE(ParseAdjacencyList("0\n").ok());         // missing label
  EXPECT_FALSE(ParseAdjacencyList("0 0 9\n").ok());     // neighbor range
  EXPECT_FALSE(ParseAdjacencyList("0 0 0\n").ok());     // self loop
  EXPECT_FALSE(ParseAdjacencyList("0 x\n").ok());       // bad integer
}

TEST(GraphIoTest, RoundTrip) {
  PowerLawParams params;
  params.num_vertices = 80;
  params.edges_per_vertex = 3;
  params.num_vertex_labels = 4;
  params.num_edge_labels = 3;
  params.seed = 5;
  const Graph g = GeneratePowerLaw(params);
  auto reparsed = ParseAdjacencyList(WriteAdjacencyList(g));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->NumVertices(), g.NumVertices());
  ASSERT_EQ(reparsed->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(reparsed->VertexLabel(v), g.VertexLabel(v));
    const auto a = g.Neighbors(v);
    const auto b = reparsed->Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto original = g.EdgeBetween(g.Endpoints(e).src, g.Endpoints(e).dst);
    const auto roundtrip =
        reparsed->EdgeBetween(g.Endpoints(e).src, g.Endpoints(e).dst);
    ASSERT_TRUE(roundtrip.has_value());
    EXPECT_EQ(reparsed->GetEdgeLabel(*roundtrip), g.GetEdgeLabel(*original));
  }
}

TEST(GeneratorTest, PowerLawShape) {
  PowerLawParams params;
  params.num_vertices = 2000;
  params.edges_per_vertex = 4;
  params.seed = 11;
  const Graph g = GeneratePowerLaw(params);
  EXPECT_EQ(g.NumVertices(), 2000u);
  // |E| ~ m * V (minus the seed clique adjustment).
  EXPECT_NEAR(g.NumEdges(), 4.0 * 2000, 300);
  // Heavy tail: max degree far above the mean.
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  const double mean_degree = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(max_degree, 8 * mean_degree);
  // Determinism.
  const Graph g2 = GeneratePowerLaw(params);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
}

TEST(GeneratorTest, RandomGraphExactEdgeCount) {
  const Graph g = GenerateRandomGraph(50, 200, 3, 2, 17);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumEdges(), 200u);
  for (VertexId v = 0; v < 50; ++v) EXPECT_LT(g.VertexLabel(v), 3u);
}

TEST(GeneratorTest, AttachKeywordsPreservesStructure) {
  const Graph base = GenerateRandomGraph(40, 100, 2, 2, 23);
  const Graph g = AttachKeywords(Graph(base), 30, 1, 3, 2.0, 7);
  EXPECT_TRUE(g.HasKeywords());
  EXPECT_EQ(g.NumEdges(), base.NumEdges());
  EXPECT_LE(g.KeywordVocabularySize(), 30u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto keywords = g.VertexKeywords(v);
    EXPECT_GE(keywords.size(), 1u);
    EXPECT_LE(keywords.size(), 3u);
    EXPECT_TRUE(std::is_sorted(keywords.begin(), keywords.end()));
  }
}

TEST(ReduceTest, EdgeFilterDropsEdges) {
  const Graph g = testgraphs::Complete(4);
  const Graph reduced = ReduceGraph(
      g, nullptr, [](const Graph& graph, EdgeId e) {
        return graph.Endpoints(e).src != 0;  // drop edges at vertex 0
      });
  EXPECT_EQ(reduced.NumVertices(), 4u);
  EXPECT_EQ(reduced.NumEdges(), 3u);  // triangle on {1,2,3}
  EXPECT_EQ(reduced.Degree(0), 0u);
  EXPECT_TRUE(reduced.IsVertexActive(0));  // kept: no vertex filter applied
}

TEST(ReduceTest, VertexFilterMasksAndDropsIncidentEdges) {
  const Graph g = testgraphs::Cycle(5);
  const Graph reduced = ReduceGraph(
      g, [](const Graph&, VertexId v) { return v != 2; }, nullptr);
  EXPECT_FALSE(reduced.IsVertexActive(2));
  EXPECT_EQ(reduced.NumActiveVertices(), 4u);
  EXPECT_EQ(reduced.NumEdges(), 3u);
  EXPECT_EQ(reduced.Degree(2), 0u);
  // Labels survive.
  EXPECT_EQ(reduced.VertexLabel(2), g.VertexLabel(2));
}

TEST(ReduceTest, KeywordReductionKeepsCoveringElements) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(0);
  const EdgeId e01 = b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const EdgeId e34 = b.AddEdge(3, 4);
  b.SetEdgeKeywords(e01, {5});
  b.SetEdgeKeywords(e34, {9});
  const Graph g = std::move(b).Build();
  const std::vector<uint32_t> query = {5};
  const Graph reduced = ReduceToKeywords(g, query);
  EXPECT_EQ(reduced.NumEdges(), 1u);
  EXPECT_TRUE(reduced.IsVertexActive(0));
  EXPECT_TRUE(reduced.IsVertexActive(1));
  EXPECT_FALSE(reduced.IsVertexActive(3));
}

TEST(InvertedIndexTest, PostingsSortedAndComplete) {
  const Graph g = AttachKeywords(GenerateRandomGraph(30, 60, 1, 1, 29),
                                 20, 1, 2, 1.5, 31);
  const InvertedIndex index(g);
  uint64_t total_postings = 0;
  for (uint32_t keyword = 0; keyword < index.VocabularySize(); ++keyword) {
    const auto postings = index.EdgesWithKeyword(keyword);
    EXPECT_TRUE(std::is_sorted(postings.begin(), postings.end()));
    total_postings += postings.size();
    for (const EdgeId e : postings) {
      EXPECT_TRUE(index.EdgeContains(keyword, e));
    }
  }
  EXPECT_GT(total_postings, 0u);
  // Spot check membership against raw keyword data.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    for (const uint32_t keyword : g.EdgeKeywords(e)) {
      EXPECT_TRUE(index.EdgeContains(keyword, e));
    }
  }
}

TEST(DatasetsTest, Table1AnalogsAreDeterministicAndLabeled) {
  const auto datasets = MakeTable1Datasets(LabelMode::kMultiLabel);
  ASSERT_EQ(datasets.size(), 4u);
  EXPECT_EQ(datasets[0].name, "Mico-ML");
  for (const auto& d : datasets) {
    EXPECT_GT(d.graph.NumVertices(), 0u);
    EXPECT_GT(d.graph.NumEdges(), 0u);
  }
  // -SL variants carry a single vertex label.
  const auto mico_sl = MakeDataset(DatasetId::kMico, LabelMode::kSingleLabel);
  std::set<Label> labels;
  for (VertexId v = 0; v < mico_sl.graph.NumVertices(); ++v) {
    labels.insert(mico_sl.graph.VertexLabel(v));
  }
  EXPECT_EQ(labels.size(), 1u);
  // Determinism across calls.
  const auto again = MakeDataset(DatasetId::kMico, LabelMode::kSingleLabel);
  EXPECT_EQ(again.graph.NumEdges(), mico_sl.graph.NumEdges());
}

TEST(DatasetsTest, WikidataKeywordsAttached) {
  const Graph g = MakeWikidataWithKeywords();
  EXPECT_TRUE(g.HasKeywords());
  EXPECT_GT(g.KeywordVocabularySize(), 100u);
}

TEST(TestGraphsTest, PaperFigure1Shape) {
  const Graph g = testgraphs::PaperFigure1();
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.NumEdges(), 10u);
  EXPECT_EQ(g.Degree(4), 3u);
  EXPECT_EQ(g.Degree(5), 2u);
  EXPECT_EQ(g.Degree(6), 1u);
}

TEST(TestGraphsTest, PetersenProperties) {
  const Graph g = testgraphs::Petersen();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.Degree(v), 3u);
}

TEST(GraphBuilderTest, HasEdgeAgainstSortedPendingLists) {
  // Edges inserted in shuffled order: the pending lists must stay sorted so
  // HasEdge's binary search answers correctly throughout the build.
  GraphBuilder b;
  for (uint32_t v = 0; v < 40; ++v) b.AddVertex(0);
  SplitMix64 rng(99);
  std::set<std::pair<VertexId, VertexId>> added;
  for (int i = 0; i < 200; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(40));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(40));
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    if (added.count(key)) {
      EXPECT_TRUE(b.HasEdge(u, v));
      continue;
    }
    EXPECT_FALSE(b.HasEdge(u, v));
    b.AddEdge(u, v);
    added.insert(key);
  }
  const Graph g = std::move(b).Build();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto neighbors = g.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
  }
}

TEST(GraphTest, NumActiveVerticesCachedAtBuild) {
  const Graph full = GenerateRandomGraph(30, 60, 1, 1, 11);
  EXPECT_EQ(full.NumActiveVertices(), 30u);
  const Graph reduced = ReduceGraph(
      full, [](const Graph&, VertexId v) { return v % 3 != 0; }, nullptr);
  uint32_t expected = 0;
  for (VertexId v = 0; v < reduced.NumVertices(); ++v) {
    if (reduced.IsVertexActive(v)) ++expected;
  }
  EXPECT_EQ(reduced.NumActiveVertices(), expected);
  EXPECT_LT(reduced.NumActiveVertices(), reduced.NumVertices());
}

TEST(GraphTest, HubBitmapMatchesAdjacencyLists) {
  // Vertex 0 is connected to everything -> degree 99 >= threshold 64.
  GraphBuilder b;
  for (uint32_t v = 0; v < 100; ++v) b.AddVertex(0);
  for (uint32_t v = 1; v < 100; ++v) b.AddEdge(0, v);
  SplitMix64 rng(7);
  for (int i = 0; i < 150; ++i) {
    const VertexId u = 1 + static_cast<VertexId>(rng.NextBounded(99));
    const VertexId v = 1 + static_cast<VertexId>(rng.NextBounded(99));
    if (u == v || b.HasEdge(u, v)) continue;
    b.AddEdge(u, v);
  }
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.HubDegreeThreshold(), 64u);
  ASSERT_GE(g.NumHubs(), 1u);
  ASSERT_NE(g.HubRow(0), nullptr);
  // IsAdjacent (bitmap-accelerated for pairs touching vertex 0) must agree
  // with the CSR ground truth for every pair, both directions.
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    const bool is_hub = g.Degree(u) >= g.HubDegreeThreshold();
    EXPECT_EQ(g.HubRow(u) != nullptr, is_hub) << u;
    for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
      const bool expected = g.EdgeBetween(u, v).has_value();
      EXPECT_EQ(g.IsAdjacent(u, v), expected) << u << "," << v;
      EXPECT_EQ(g.IsAdjacent(v, u), expected) << v << "," << u;
    }
  }
}

TEST(GraphTest, NoHubsOnSparseGraph) {
  const Graph g = testgraphs::Petersen();
  EXPECT_EQ(g.NumHubs(), 0u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.HubRow(v), nullptr);
  }
}

// ===== Set-algebra kernels (graph/adjacency.h) =============================

std::vector<uint32_t> SortedRandomSet(SplitMix64& rng, size_t size,
                                      uint32_t universe) {
  std::set<uint32_t> values;
  while (values.size() < size) {
    values.insert(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  return {values.begin(), values.end()};
}

TEST(AdjacencyKernelTest, MatchesStdAlgorithmsAcrossSizeRatios) {
  SplitMix64 rng(1234);
  // Size pairs chosen to land on both sides of the merge/gallop crossover.
  const std::pair<size_t, size_t> shapes[] = {
      {0, 10}, {10, 0}, {5, 7},  {30, 31},  {4, 400},
      {400, 4}, {1, 500}, {64, 64}, {3, 1000}, {1000, 3}};
  for (const auto& [size_a, size_b] : shapes) {
    const std::vector<uint32_t> a = SortedRandomSet(rng, size_a, 2000);
    const std::vector<uint32_t> b = SortedRandomSet(rng, size_b, 2000);
    std::vector<uint32_t> expected_intersection;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected_intersection));
    std::vector<uint32_t> expected_difference;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected_difference));
    std::vector<uint32_t> got;
    adjacency::Intersect(a, b, &got);
    EXPECT_EQ(got, expected_intersection) << size_a << "x" << size_b;
    got.clear();
    adjacency::Difference(a, b, &got);
    EXPECT_EQ(got, expected_difference) << size_a << "x" << size_b;

    const uint32_t bound = 1000;
    auto above = [bound](const std::vector<uint32_t>& v) {
      std::vector<uint32_t> r;
      for (const uint32_t x : v) {
        if (x > bound) r.push_back(x);
      }
      return r;
    };
    got.clear();
    adjacency::IntersectAbove(a, b, bound, &got);
    EXPECT_EQ(got, above(expected_intersection)) << size_a << "x" << size_b;
    got.clear();
    adjacency::DifferenceAbove(a, b, bound, &got);
    EXPECT_EQ(got, above(expected_difference)) << size_a << "x" << size_b;
    got.clear();
    adjacency::CopyAbove(a, bound, &got);
    EXPECT_EQ(got, above(a)) << size_a << "x" << size_b;
  }
}

TEST(AdjacencyKernelTest, AppendsWithoutClearing) {
  const std::vector<uint32_t> a = {1, 3, 5};
  const std::vector<uint32_t> b = {3, 5, 7};
  std::vector<uint32_t> out = {42};
  adjacency::Intersect(a, b, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{42, 3, 5}));
}

TEST(AdjacencyKernelTest, GallopLowerBoundFindsFirstNotLess) {
  const std::vector<uint32_t> haystack = {2, 4, 4, 8, 16, 32, 64, 100};
  for (size_t begin = 0; begin < haystack.size(); ++begin) {
    for (uint32_t needle = 0; needle <= 101; ++needle) {
      const size_t expected = static_cast<size_t>(
          std::lower_bound(haystack.begin() + begin, haystack.end(), needle) -
          haystack.begin());
      EXPECT_EQ(adjacency::GallopLowerBound(haystack, begin, needle),
                expected)
          << "begin=" << begin << " needle=" << needle;
    }
  }
}

}  // namespace
}  // namespace fractal
