// Edge cases and degenerate inputs: tiny graphs, expansion past the graph
// or pattern size, empty results, vertexless/edgeless structures, and
// boundary conditions of the operators.
#include <gtest/gtest.h>

#include "apps/cliques.h"
#include "apps/motifs.h"
#include "apps/queries.h"
#include "core/context.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_reduce.h"
#include "graph/test_graphs.h"
#include "pattern/canonical.h"

namespace fractal {
namespace {

ExecutionConfig OneByOne() {
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  return config;
}

TEST(EdgeCasesTest, SingleVertexGraph) {
  GraphBuilder b;
  b.AddVertex(5);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Density(), 0.0);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  EXPECT_EQ(graph.VFractoid().Expand(1).CountSubgraphs(OneByOne()), 1u);
  EXPECT_EQ(graph.VFractoid().Expand(2).CountSubgraphs(OneByOne()), 0u);
  EXPECT_EQ(graph.EFractoid().Expand(1).CountSubgraphs(OneByOne()), 0u);
}

TEST(EdgeCasesTest, EdgelessGraphHasNoEdgeSubgraphs) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(0);
  const Graph g = std::move(b).Build();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  EXPECT_EQ(graph.VFractoid().Expand(1).CountSubgraphs(OneByOne()), 5u);
  EXPECT_EQ(graph.VFractoid().Expand(2).CountSubgraphs(OneByOne()), 0u);
  EXPECT_EQ(CountTriangles(graph, OneByOne()), 0u);
}

TEST(EdgeCasesTest, ExpandBeyondGraphSizeYieldsNothing) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(3));
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(OneByOne()), 1u);
  EXPECT_EQ(graph.VFractoid().Expand(4).CountSubgraphs(OneByOne()), 0u);
  EXPECT_EQ(graph.VFractoid().Expand(10).CountSubgraphs(OneByOne()), 0u);
}

TEST(EdgeCasesTest, PatternExpandPastPatternSizeIsEmpty) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(5));
  // The pattern-induced strategy stops producing extensions at the pattern
  // size; expanding further finds no deeper subgraphs.
  const Pattern triangle = Pattern::Clique(3);
  EXPECT_EQ(graph.PFractoid(triangle).Expand(3).CountSubgraphs(OneByOne()),
            10u);
  EXPECT_EQ(graph.PFractoid(triangle).Expand(4).CountSubgraphs(OneByOne()),
            0u);
}

TEST(EdgeCasesTest, QueryLargerThanGraph) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(3));
  EXPECT_EQ(CountQueryMatches(graph, Pattern::Clique(5), OneByOne()), 0u);
}

TEST(EdgeCasesTest, CliquesLargerThanCliqueNumber) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Cycle(8));
  EXPECT_EQ(CountCliques(graph, 3, OneByOne()), 0u);
  EXPECT_EQ(CountCliquesOptimized(graph, 3, OneByOne()), 0u);
}

TEST(EdgeCasesTest, ReduceEverythingAway) {
  const Graph g = testgraphs::Complete(4);
  const Graph reduced =
      ReduceGraph(g, [](const Graph&, VertexId) { return false; }, nullptr);
  EXPECT_EQ(reduced.NumEdges(), 0u);
  EXPECT_EQ(reduced.NumActiveVertices(), 0u);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(reduced));
  EXPECT_EQ(graph.VFractoid().Expand(1).CountSubgraphs(OneByOne()), 0u);
}

TEST(EdgeCasesTest, MotifsOfSizeOneAndTwo) {
  const Graph g = GenerateRandomGraph(20, 45, 1, 1, 7);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  const MotifsResult one = CountMotifs(graph, 1, OneByOne());
  EXPECT_EQ(one.total, 20u);
  EXPECT_EQ(one.counts.size(), 1u);
  const MotifsResult two = CountMotifs(graph, 2, OneByOne());
  EXPECT_EQ(two.total, 45u);  // one per edge
}

TEST(EdgeCasesTest, DisconnectedGraphEnumeratesPerComponent) {
  // Two disjoint triangles: 2 three-vertex subgraphs of each shape... just
  // triangles: 2; no subgraph spans components.
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  const Graph g = std::move(b).Build();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(OneByOne()), 2u);
  EXPECT_EQ(graph.VFractoid().Expand(4).CountSubgraphs(OneByOne()), 0u);
}

TEST(EdgeCasesTest, SingleVertexPatternCanonical) {
  Pattern p;
  p.AddVertex(9);
  const CanonicalResult canonical = CanonicalForm(p);
  EXPECT_EQ(canonical.pattern.NumVertices(), 1u);
  EXPECT_EQ(canonical.pattern.VertexLabel(0), 9u);
  EXPECT_EQ(canonical.permutation, (std::vector<uint32_t>{0}));
  EXPECT_EQ(canonical.orbit, (std::vector<uint32_t>{0}));
}

TEST(EdgeCasesTest, EmptyGraphAlgorithms) {
  const Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  const ComponentsResult components = ConnectedComponents(g);
  EXPECT_EQ(components.num_components, 0u);
  const CoreResult cores = CoreDecomposition(g);
  EXPECT_EQ(cores.degeneracy, 0u);
  const GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.triangles, 0u);
}

TEST(EdgeCasesTest, MaskedVerticesNeverAppearInResults) {
  const Graph base = testgraphs::Complete(6);
  const Graph reduced = ReduceGraph(
      base, [](const Graph&, VertexId v) { return v < 4; }, nullptr);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(reduced));
  const auto subgraphs =
      graph.VFractoid().Expand(3).CollectSubgraphs(OneByOne());
  EXPECT_EQ(subgraphs.size(), 4u);  // C(4,3)
  for (const Subgraph& s : subgraphs) {
    for (const VertexId v : s.Vertices()) EXPECT_LT(v, 4u);
  }
}

TEST(EdgeCasesTest, FilterThatRejectsEverything) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(5));
  const uint64_t count =
      graph.VFractoid()
          .Expand(1)
          .Filter([](const Subgraph&, Computation&) { return false; })
          .Expand(1)
          .CountSubgraphs(OneByOne());
  EXPECT_EQ(count, 0u);
}

TEST(EdgeCasesTest, ManyMoreThreadsThanWork) {
  // 16 threads, 4 root vertices: most threads start idle and must
  // terminate promptly.
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(4));
  ExecutionConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 4;
  config.network.latency_micros = 1;
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(config), 4u);
}

}  // namespace
}  // namespace fractal
