// Tests for the lockdep lock-order checker (util/lockdep.h) and its Mutex
// integration (util/mutex.h): seeded inversions are reported with both
// acquisition paths, and a full multi-worker Cluster execution — the
// runtime this checker exists to police — produces zero false positives.
#include "util/lockdep.h"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/executor.h"
#include "graph/generators.h"
#include "runtime/cluster.h"
#include "util/mutex.h"

namespace fractal {
namespace {

// The seeded-inversion tests require instrumented Mutexes; with
// FRACTAL_ENABLE_LOCKDEP=OFF (the release CI configuration) nothing is
// recorded, so they skip. The full-Cluster and AssertHeld tests still run.
#ifdef FRACTAL_LOCKDEP
#define SKIP_WITHOUT_LOCKDEP() (void)0
#else
#define SKIP_WITHOUT_LOCKDEP() \
  GTEST_SKIP() << "lockdep compiled out (FRACTAL_ENABLE_LOCKDEP=OFF)"
#endif

/// Installs a report-capturing handler for the duration of a test (the
/// default handler aborts) and resets the acquired-before graph on both
/// ends, so seeded edges never leak into other tests of this binary.
class LockdepCapture {
 public:
  LockdepCapture() {
    lockdep::ResetGraphForTest();
    previous_ = lockdep::SetFailureHandlerForTest(
        [this](const lockdep::InversionReport& report) {
          // Reports can arrive from any instrumented thread (e.g. a worker
          // of the Cluster test); raw std::mutex to stay uninstrumented.
          std::lock_guard<std::mutex> lock(mu_);
          reports_.push_back(report);
        });
  }
  ~LockdepCapture() {
    lockdep::SetFailureHandlerForTest(previous_);
    lockdep::ResetGraphForTest();
  }

  std::vector<lockdep::InversionReport> reports() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<lockdep::InversionReport> reports_;
  lockdep::FailureHandler previous_;
};

TEST(LockdepTest, ConsistentOrderProducesNoReport) {
  SKIP_WITHOUT_LOCKDEP();
  LockdepCapture capture;
  Mutex a("lockdep_test::A");
  Mutex b("lockdep_test::B");

  for (int i = 0; i < 3; ++i) {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  EXPECT_TRUE(capture.reports().empty());
  EXPECT_EQ(lockdep::NumEdgesForTest(), 1u);  // A -> B, recorded once
}

TEST(LockdepTest, SeededInversionReportedWithBothPaths) {
  SKIP_WITHOUT_LOCKDEP();
  LockdepCapture capture;
  Mutex a("lockdep_test::A");
  Mutex b("lockdep_test::B");

  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // records A -> B
  }
  ASSERT_TRUE(capture.reports().empty());
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // B -> A closes the cycle: detected *before*
                          // blocking, on a schedule with no actual deadlock
  }

  const std::vector<lockdep::InversionReport> reports = capture.reports();
  ASSERT_EQ(reports.size(), 1u);
  const lockdep::InversionReport& report = reports[0];
  EXPECT_EQ(report.from, "lockdep_test::B");
  EXPECT_EQ(report.to, "lockdep_test::A");
  // Path 1: the acquiring thread's held stack.
  EXPECT_NE(report.acquiring_path.find("lockdep_test::B"), std::string::npos);
  EXPECT_NE(report.acquiring_path.find("acquiring lockdep_test::A"),
            std::string::npos);
  // Path 2: the recorded A -> B chain with its original acquisition site.
  EXPECT_NE(report.existing_path.find("lockdep_test::A -> lockdep_test::B"),
            std::string::npos);
  EXPECT_NE(report.existing_path.find("first:"), std::string::npos);
  // The rendered report carries both paths.
  const std::string text = report.ToString();
  EXPECT_NE(text.find("path 1"), std::string::npos);
  EXPECT_NE(text.find("path 2"), std::string::npos);
}

TEST(LockdepTest, TransitiveInversionReportsFullChain) {
  SKIP_WITHOUT_LOCKDEP();
  LockdepCapture capture;
  Mutex a("lockdep_test::A");
  Mutex b("lockdep_test::B");
  Mutex c("lockdep_test::C");

  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // A -> B
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_c(c);  // B -> C
  }
  ASSERT_TRUE(capture.reports().empty());
  {
    MutexLock lock_c(c);
    MutexLock lock_a(a);  // C -> A: cycle through A -> B -> C
  }

  const std::vector<lockdep::InversionReport> reports = capture.reports();
  ASSERT_EQ(reports.size(), 1u);
  const lockdep::InversionReport& report = reports[0];
  EXPECT_EQ(report.from, "lockdep_test::C");
  EXPECT_EQ(report.to, "lockdep_test::A");
  EXPECT_NE(report.existing_path.find("lockdep_test::A -> lockdep_test::B"),
            std::string::npos);
  EXPECT_NE(report.existing_path.find("lockdep_test::B -> lockdep_test::C"),
            std::string::npos);
}

TEST(LockdepTest, SameClassNestingReported) {
  SKIP_WITHOUT_LOCKDEP();
  LockdepCapture capture;
  // Two instances of one lock class: holding both at once is a self-cycle
  // (a sibling thread can take them in the opposite order).
  Mutex first("lockdep_test::twin");
  Mutex second("lockdep_test::twin");

  {
    MutexLock lock_first(first);
    MutexLock lock_second(second);
  }

  const std::vector<lockdep::InversionReport> reports = capture.reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].from, "lockdep_test::twin");
  EXPECT_EQ(reports[0].to, "lockdep_test::twin");
  EXPECT_NE(reports[0].existing_path.find("recursive"), std::string::npos);
}

TEST(LockdepTest, OutOfOrderReleaseTracksHeldStack) {
  SKIP_WITHOUT_LOCKDEP();
  LockdepCapture capture;
  Mutex a("lockdep_test::A");
  Mutex b("lockdep_test::B");
  Mutex c("lockdep_test::C");

  // Hand-over-hand: lock A, lock B, release A (out of LIFO order), lock C.
  // A was correctly popped mid-stack, so only B is held when C is taken:
  // exactly two edges (A->B, B->C) and no direct A->C.
  a.Lock();
  b.Lock();
  a.Unlock();
  c.Lock();
  c.Unlock();
  b.Unlock();
  EXPECT_TRUE(capture.reports().empty());
  EXPECT_EQ(lockdep::NumEdgesForTest(), 2u);
}

TEST(LockdepTest, AssertHeldPassesWhileLocked) {
  Mutex a("lockdep_test::assert");
  MutexLock lock(a);
  a.AssertHeld();  // aborts (in lockdep builds) if not held
}

// The zero-false-positive guarantee on the real runtime: a full multi-step,
// multi-worker execution with internal AND external stealing — every lock
// class of the runtime (Cluster::run_mu/mu, MessageBus stop/inbox/request,
// SubgraphEnumerator::mu, ExecutionState::mu) gets exercised — must record
// its acquired-before edges without ever closing a cycle.
TEST(LockdepTest, FullClusterRunProducesNoInversions) {
  LockdepCapture capture;

  const Graph g = GenerateRandomGraph(14, 40, 1, 1, 1234);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 2;
  options.external_work_stealing = true;
  options.network.latency_micros = 1;
  Cluster cluster(options);

  ExecutionConfig config;
  config.cluster = &cluster;
  config.network.latency_micros = 1;

  const uint64_t vertex_count =
      graph.VFractoid().Expand(3).CountSubgraphs(config);
  const uint64_t edge_count =
      graph.EFractoid().Expand(2).CountSubgraphs(config);
  EXPECT_GT(vertex_count, 0u);
  EXPECT_GT(edge_count, 0u);
  EXPECT_EQ(cluster.steps_run(), 2u);

#ifdef FRACTAL_LOCKDEP
  // The run exercised instrumented locks (edges were recorded) and none of
  // the recorded orders formed a cycle.
  EXPECT_GE(lockdep::NumEdgesForTest(), 1u);
#endif
  const std::vector<lockdep::InversionReport> reports = capture.reports();
  EXPECT_TRUE(reports.empty()) << reports[0].ToString();
}

}  // namespace
}  // namespace fractal
