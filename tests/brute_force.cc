#include "tests/brute_force.h"

#include <algorithm>
#include <functional>
#include <set>

#include "pattern/automorphism.h"
#include "pattern/canonical.h"
#include "util/check.h"

namespace fractal {
namespace brute {
namespace {

/// Calls `visit` on every k-combination (as an index vector) of 0..n-1.
void ForEachCombination(uint32_t n, uint32_t k,
                        const std::function<void(const std::vector<uint32_t>&)>&
                            visit) {
  if (k > n) return;
  std::vector<uint32_t> combo(k);
  for (uint32_t i = 0; i < k; ++i) combo[i] = i;
  while (true) {
    visit(combo);
    // Advance to next combination.
    int32_t i = static_cast<int32_t>(k) - 1;
    while (i >= 0 && combo[i] == n - k + i) --i;
    if (i < 0) break;
    ++combo[i];
    for (uint32_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }
}

bool VertexSetConnected(const Graph& graph,
                        const std::vector<uint32_t>& vertices) {
  if (vertices.empty()) return false;
  std::vector<uint32_t> stack = {vertices[0]};
  std::set<uint32_t> seen = {vertices[0]};
  const std::set<uint32_t> members(vertices.begin(), vertices.end());
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    for (const VertexId u : graph.Neighbors(v)) {
      if (members.count(u) && !seen.count(u)) {
        seen.insert(u);
        stack.push_back(u);
      }
    }
  }
  return seen.size() == vertices.size();
}

bool EdgeSetConnected(const Graph& graph, const std::vector<uint32_t>& edges) {
  if (edges.empty()) return false;
  // Union-find over endpoints.
  std::map<VertexId, VertexId> parent;
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  for (const EdgeId e : edges) {
    const EdgeEndpoints& ends = graph.Endpoints(e);
    for (const VertexId v : {ends.src, ends.dst}) {
      if (!parent.count(v)) parent[v] = v;
    }
    parent[find(ends.src)] = find(ends.dst);
  }
  const VertexId root = find(graph.Endpoints(edges[0]).src);
  for (const auto& [v, p] : parent) {
    if (find(v) != root) return false;
  }
  return true;
}

/// Induced pattern of a vertex set (positions in the order given).
Pattern InducedPattern(const Graph& graph,
                       const std::vector<uint32_t>& vertices) {
  Pattern pattern;
  for (const uint32_t v : vertices) pattern.AddVertex(graph.VertexLabel(v));
  for (uint32_t i = 0; i < vertices.size(); ++i) {
    for (uint32_t j = i + 1; j < vertices.size(); ++j) {
      const auto edge = graph.EdgeBetween(vertices[i], vertices[j]);
      if (edge) pattern.AddEdge(i, j, graph.GetEdgeLabel(*edge));
    }
  }
  return pattern;
}

}  // namespace

uint64_t CountConnectedVertexSets(const Graph& graph, uint32_t k) {
  uint64_t count = 0;
  ForEachCombination(graph.NumVertices(), k,
                     [&](const std::vector<uint32_t>& combo) {
                       if (VertexSetConnected(graph, combo)) ++count;
                     });
  return count;
}

uint64_t CountConnectedEdgeSets(const Graph& graph, uint32_t k) {
  uint64_t count = 0;
  ForEachCombination(graph.NumEdges(), k,
                     [&](const std::vector<uint32_t>& combo) {
                       if (EdgeSetConnected(graph, combo)) ++count;
                     });
  return count;
}

uint64_t CountCliques(const Graph& graph, uint32_t k) {
  uint64_t count = 0;
  ForEachCombination(graph.NumVertices(), k,
                     [&](const std::vector<uint32_t>& combo) {
                       for (uint32_t i = 0; i < combo.size(); ++i) {
                         for (uint32_t j = i + 1; j < combo.size(); ++j) {
                           if (!graph.IsAdjacent(combo[i], combo[j])) return;
                         }
                       }
                       ++count;
                     });
  return count;
}

std::map<Pattern, uint64_t> MotifCounts(const Graph& graph, uint32_t k) {
  std::map<Pattern, uint64_t> counts;
  ForEachCombination(
      graph.NumVertices(), k, [&](const std::vector<uint32_t>& combo) {
        if (!VertexSetConnected(graph, combo)) return;
        ++counts[CanonicalForm(InducedPattern(graph, combo)).pattern];
      });
  return counts;
}

uint64_t CountPatternMatches(const Graph& graph, const Pattern& pattern) {
  const uint32_t n = pattern.NumVertices();
  uint64_t injective_maps = 0;
  std::vector<VertexId> assignment(n, kInvalidVertex);
  std::function<void(uint32_t)> assign = [&](uint32_t position) {
    if (position == n) {
      ++injective_maps;
      return;
    }
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (!graph.IsVertexActive(v)) continue;
      if (graph.VertexLabel(v) != pattern.VertexLabel(position)) continue;
      bool ok = true;
      for (uint32_t earlier = 0; earlier < position && ok; ++earlier) {
        if (assignment[earlier] == v) ok = false;
        if (ok && pattern.IsAdjacent(earlier, position)) {
          const auto edge = graph.EdgeBetween(assignment[earlier], v);
          if (!edge ||
              graph.GetEdgeLabel(*edge) !=
                  pattern.EdgeLabelBetween(earlier, position)) {
            ok = false;
          }
        }
      }
      if (!ok) continue;
      assignment[position] = v;
      assign(position + 1);
      assignment[position] = kInvalidVertex;
    }
  };
  assign(0);
  const uint64_t automorphisms = Automorphisms(pattern).size();
  FRACTAL_CHECK(injective_maps % automorphisms == 0);
  return injective_maps / automorphisms;
}

std::map<Pattern, uint64_t> FsmFrequentPatterns(const Graph& graph,
                                                uint32_t min_support,
                                                uint32_t max_edges) {
  // Domains per canonical pattern: canonical position -> set of vertices.
  std::map<Pattern, std::vector<std::set<VertexId>>> domains;
  for (uint32_t k = 1; k <= max_edges; ++k) {
    ForEachCombination(
        graph.NumEdges(), k, [&](const std::vector<uint32_t>& combo) {
          if (!EdgeSetConnected(graph, combo)) return;
          // Vertices of the edge set, sorted.
          std::set<VertexId> vertex_set;
          for (const EdgeId e : combo) {
            vertex_set.insert(graph.Endpoints(e).src);
            vertex_set.insert(graph.Endpoints(e).dst);
          }
          const std::vector<VertexId> vertices(vertex_set.begin(),
                                               vertex_set.end());
          Pattern quick;
          for (const VertexId v : vertices) {
            quick.AddVertex(graph.VertexLabel(v));
          }
          auto position_of = [&vertices](VertexId v) {
            return static_cast<uint32_t>(
                std::lower_bound(vertices.begin(), vertices.end(), v) -
                vertices.begin());
          };
          for (const EdgeId e : combo) {
            const EdgeEndpoints& ends = graph.Endpoints(e);
            quick.AddEdge(position_of(ends.src), position_of(ends.dst),
                          graph.GetEdgeLabel(e));
          }
          const CanonicalResult canonical = CanonicalForm(quick);
          auto& pattern_domains = domains[canonical.pattern];
          pattern_domains.resize(vertices.size());
          // Orbit closure (see DomainSupport::AddEmbedding).
          for (uint32_t i = 0; i < vertices.size(); ++i) {
            pattern_domains[canonical.orbit[canonical.permutation[i]]].insert(
                vertices[i]);
          }
        });
  }
  std::map<Pattern, uint64_t> frequent;
  for (const auto& [pattern, pattern_domains] : domains) {
    uint64_t support = UINT64_MAX;
    for (const auto& domain : pattern_domains) {
      if (domain.empty()) continue;  // non-representative orbit slot
      support = std::min<uint64_t>(support, domain.size());
    }
    if (support >= min_support) frequent[pattern] = support;
  }
  return frequent;
}

}  // namespace brute
}  // namespace fractal
