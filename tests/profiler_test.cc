// Tests for the in-process sampling profiler (obs/profiler.h): samples of a
// known CPU-bound function must symbolize back to it and carry the
// enclosing FRACTAL_TRACE_SPAN, the collapsed-stack export must be
// flamegraph-parsable, and session lifecycle (start/stop/restart, windowed
// snapshots) must hold up.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"

// The spin target must be an exported (non-static) symbol: dladdr resolves
// through the dynamic symbol table (CMAKE_ENABLE_EXPORTS), and extern "C"
// keeps the name mangle-free for exact matching. noclone matters as much as
// noinline: at -O3 GCC otherwise emits a constant-propagated local clone
// (`.constprop`) that samples land in but dladdr cannot see.
#if defined(__clang__)
#define FRACTAL_TEST_NO_OPT __attribute__((noinline))
#else
#define FRACTAL_TEST_NO_OPT __attribute__((noinline, noclone))
#endif
extern "C" FRACTAL_TEST_NO_OPT uint64_t FractalProfilerTestSpin(
    uint64_t iters) {
  volatile uint64_t acc = 1;
  for (uint64_t i = 0; i < iters; ++i) {
    acc = acc * 2862933555777941757ULL + 3037000493ULL;
  }
  return acc;
}

// Read through a volatile so no caller ever sees a compile-time-constant
// iteration count (belt and braces against interprocedural cloning).
volatile uint64_t g_spin_chunk_iters = 2'000'000;

namespace fractal {
namespace {

#if defined(__linux__)

// Spins in FractalProfilerTestSpin (under span "test/spin") until the
// deadline; chunked so the wall-clock check stays a negligible fraction.
void SpinFor(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    FRACTAL_TRACE_SPAN("test/spin");
    FractalProfilerTestSpin(g_spin_chunk_iters);
  }
}

TEST(ProfilerTest, SamplesLandInSpinFunctionWithSpan) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.RegisterCurrentThread("profiler-test-spin");
  const std::vector<uint64_t> marks = profiler.Marks();
  ASSERT_TRUE(profiler.Start(/*hz=*/250).ok());
  SpinFor(0.6);
  profiler.Stop();
  const obs::ProfileSnapshot snapshot = profiler.Snapshot(&marks);

  uint64_t in_spin = 0, in_spin_with_span = 0, total = 0;
  for (const obs::ThreadProfile& thread : snapshot.threads) {
    if (thread.name != "profiler-test-spin") continue;
    for (const obs::ProfileStack& stack : thread.stacks) {
      ++total;
      bool hit = false;
      for (const uintptr_t pc : stack.pcs) {
        if (obs::Profiler::Symbolize(pc).find("FractalProfilerTestSpin") !=
            std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      ++in_spin;
      if (stack.span != nullptr && std::string(stack.span) == "test/spin") {
        ++in_spin_with_span;
      }
    }
  }
  // 0.6s at 250 Hz is ~150 samples; demand a tenth of that so a heavily
  // loaded or sanitized host still passes, but the ratio stays strict.
  ASSERT_GE(total, 15u) << "too few samples to judge";
  EXPECT_GE(static_cast<double>(in_spin), 0.9 * static_cast<double>(total))
      << in_spin << "/" << total << " samples symbolized to the spin fn";
  EXPECT_GE(static_cast<double>(in_spin_with_span),
            0.9 * static_cast<double>(in_spin))
      << in_spin_with_span << "/" << in_spin
      << " spin samples carried the test/spin span";
}

TEST(ProfilerTest, CollapsedStacksAreFlamegraphParsable) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.RegisterCurrentThread("profiler-test-collapse");
  const std::vector<uint64_t> marks = profiler.Marks();
  ASSERT_TRUE(profiler.Start(/*hz=*/250).ok());
  SpinFor(0.3);
  profiler.Stop();
  const std::string collapsed =
      obs::Profiler::CollapsedStacks(profiler.Snapshot(&marks));
  ASSERT_FALSE(collapsed.empty());
  std::istringstream lines(collapsed);
  std::string line;
  size_t parsed = 0;
  while (std::getline(lines, line)) {
    // "thread;frame;...;frame count": a trailing integer after the last
    // space, at least one ';'-separated frame before it.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no count in: " << line;
    ASSERT_LT(space + 1, line.size());
    for (size_t i = space + 1; i < line.size(); ++i) {
      ASSERT_TRUE(line[i] >= '0' && line[i] <= '9')
          << "non-numeric count in: " << line;
    }
    ++parsed;
  }
  EXPECT_GT(parsed, 0u);
  EXPECT_NE(collapsed.find("profiler-test-collapse;"), std::string::npos);
  EXPECT_NE(collapsed.find("FractalProfilerTestSpin"), std::string::npos) << collapsed;
}

TEST(ProfilerTest, SpanProfileAttributesSelfTime) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.RegisterCurrentThread("profiler-test-span");
  const std::vector<uint64_t> marks = profiler.Marks();
  ASSERT_TRUE(profiler.Start(/*hz=*/250).ok());
  SpinFor(0.3);
  profiler.Stop();
  const std::string table =
      obs::Profiler::SpanProfile(profiler.Snapshot(&marks));
  EXPECT_NE(table.find("test/spin"), std::string::npos) << table;
  EXPECT_NE(table.find("span self-time profile"), std::string::npos);
}

TEST(ProfilerTest, StartWhileRunningFailsAndRestartWorks) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.RegisterCurrentThread("profiler-test-lifecycle");
  ASSERT_TRUE(profiler.Start(/*hz=*/100).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(/*hz=*/100).ok());  // already running
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  profiler.Stop();  // idempotent
  // A second session keeps accumulating into the same rings.
  const std::vector<uint64_t> marks = profiler.Marks();
  ASSERT_TRUE(profiler.Start(/*hz=*/250).ok());
  SpinFor(0.2);
  profiler.Stop();
  EXPECT_GT(profiler.Snapshot(&marks).TotalSamples(), 0u);
}

TEST(ProfilerTest, WindowedSnapshotExcludesEarlierSamples) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.RegisterCurrentThread("profiler-test-window");
  ASSERT_TRUE(profiler.Start(/*hz=*/250).ok());
  SpinFor(0.2);
  const std::vector<uint64_t> marks = profiler.Marks();
  const uint64_t at_mark = profiler.Snapshot().TotalSamples();
  SpinFor(0.2);
  profiler.Stop();
  const uint64_t windowed = profiler.Snapshot(&marks).TotalSamples();
  const uint64_t all = profiler.Snapshot().TotalSamples();
  EXPECT_LT(windowed, all);
  EXPECT_LE(windowed, all - at_mark + 1);
}

TEST(ProfilerTest, SymbolizeResolvesExportedFunction) {
  const std::string name = obs::Profiler::Symbolize(
      reinterpret_cast<uintptr_t>(&FractalProfilerTestSpin));
  EXPECT_NE(name.find("FractalProfilerTestSpin"), std::string::npos) << name;
}

TEST(ProfilerTest, HzIsClampedNotRejected) {
  obs::Profiler& profiler = obs::Profiler::Get();
  profiler.RegisterCurrentThread("profiler-test-clamp");
  ASSERT_TRUE(profiler.Start(/*hz=*/1000000).ok());  // clamps to kMaxHz
  profiler.Stop();
  ASSERT_TRUE(profiler.Start(/*hz=*/0).ok());  // clamps to 1
  profiler.Stop();
}

#else  // !defined(__linux__)

TEST(ProfilerTest, StartIsUnimplementedOffLinux) {
  EXPECT_FALSE(obs::Profiler::Get().Start().ok());
}

#endif

}  // namespace
}  // namespace fractal
