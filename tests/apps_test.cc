#include <gtest/gtest.h>

#include <map>

#include "apps/cliques.h"
#include "apps/fsm.h"
#include "apps/keyword_search.h"
#include "apps/motifs.h"
#include "apps/queries.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "tests/brute_force.h"

namespace fractal {
namespace {

ExecutionConfig SmallCluster() {
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;
  return config;
}

TEST(MotifsTest, PetersenThreeVertexMotifs) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Petersen());
  const MotifsResult result = CountMotifs(graph, 3, SmallCluster());
  // Petersen is triangle-free: all 3-vertex motifs are paths. Each of the
  // 10 vertices has degree 3 -> C(3,2) = 3 paths centered there = 30.
  ASSERT_EQ(result.counts.size(), 1u);
  EXPECT_EQ(result.total, 30u);
  const Pattern path = CanonicalForm(Pattern::PathPattern(3)).pattern;
  ASSERT_TRUE(result.counts.count(path));
  EXPECT_EQ(result.counts.at(path), 30u);
}

TEST(MotifsTest, MatchesBruteForceOnRandomGraphs) {
  for (const uint64_t seed : {41u, 42u}) {
    const Graph g = GenerateRandomGraph(12, 28, 1, 1, seed);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(g));
    for (uint32_t k = 3; k <= 4; ++k) {
      const MotifsResult result = CountMotifs(graph, k, SmallCluster());
      const auto expected = brute::MotifCounts(g, k);
      ASSERT_EQ(result.counts.size(), expected.size())
          << "k=" << k << " seed=" << seed;
      for (const auto& [pattern, count] : expected) {
        ASSERT_TRUE(result.counts.count(pattern)) << pattern.ToString();
        EXPECT_EQ(result.counts.at(pattern), count) << pattern.ToString();
      }
    }
  }
}

TEST(MotifsTest, LabeledMotifsDistinguishLabels) {
  // Two triangles with different label multisets are different motifs.
  const Graph g = testgraphs::LabeledFsmExample();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  const MotifsResult result = CountMotifs(graph, 3, SmallCluster());
  const auto expected = brute::MotifCounts(g, 3);
  ASSERT_EQ(result.counts.size(), expected.size());
  for (const auto& [pattern, count] : expected) {
    EXPECT_EQ(result.counts.at(pattern), count);
  }
}

TEST(CliquesTest, KnownCounts) {
  FractalContext fctx;
  FractalGraph k6 = fctx.FromGraph(testgraphs::Complete(6));
  EXPECT_EQ(CountCliques(k6, 3, SmallCluster()), 20u);
  EXPECT_EQ(CountCliques(k6, 4, SmallCluster()), 15u);
  EXPECT_EQ(CountCliques(k6, 5, SmallCluster()), 6u);
  EXPECT_EQ(CountCliques(k6, 6, SmallCluster()), 1u);

  FractalGraph petersen = fctx.FromGraph(testgraphs::Petersen());
  EXPECT_EQ(CountTriangles(petersen, SmallCluster()), 0u);

  FractalGraph grid = fctx.FromGraph(testgraphs::Grid(3, 3));
  EXPECT_EQ(CountTriangles(grid, SmallCluster()), 0u);
}

TEST(CliquesTest, OptimizedMatchesListing2) {
  for (const uint64_t seed : {51u, 52u, 53u}) {
    const Graph g = GenerateRandomGraph(16, 60, 1, 1, seed);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(g));
    for (uint32_t k = 3; k <= 5; ++k) {
      const uint64_t expected = brute::CountCliques(g, k);
      EXPECT_EQ(CountCliques(graph, k, SmallCluster()), expected);
      EXPECT_EQ(CountCliquesOptimized(graph, k, SmallCluster()), expected);
    }
  }
}

TEST(CliquesTest, OptimizedDoesLessExtensionWork) {
  const Graph g = GenerateRandomGraph(60, 400, 1, 1, 61);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig single;
  single.num_workers = 1;
  single.threads_per_worker = 1;
  auto generic = CliquesFractoid(graph, 4).Execute(single);
  auto optimized = OptimizedCliquesFractoid(graph, 4).Execute(single);
  EXPECT_EQ(generic.num_subgraphs, optimized.num_subgraphs);
  EXPECT_LT(optimized.telemetry.TotalWorkUnits(),
            generic.telemetry.TotalWorkUnits());
}

TEST(FsmTest, HandVerifiedExample) {
  // LabeledFsmExample: two (0,0,1) triangles joined by a label-2 bridge.
  const Graph g = testgraphs::LabeledFsmExample();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  const FsmResult result = RunFsm(graph, /*min_support=*/2, /*max_edges=*/3,
                                  SmallCluster());
  const auto expected = brute::FsmFrequentPatterns(g, 2, 3);
  std::map<Pattern, uint64_t> got(result.frequent.begin(),
                                  result.frequent.end());
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [pattern, support] : expected) {
    ASSERT_TRUE(got.count(pattern)) << pattern.ToString();
    EXPECT_EQ(got.at(pattern), support) << pattern.ToString();
  }
  // The 0-0 edge (one inside each triangle) is frequent: both positions are
  // automorphic, so each embedding contributes both endpoints to the shared
  // domain {0, 1, 3, 4} -> MNI support 4.
  Pattern edge00;
  edge00.AddVertex(0);
  edge00.AddVertex(0);
  edge00.AddEdge(0, 1);
  EXPECT_EQ(got.at(CanonicalForm(edge00).pattern), 4u);
}

TEST(FsmTest, MatchesBruteForceOnRandomLabeledGraphs) {
  for (const uint64_t seed : {71u, 72u}) {
    const Graph g = GenerateRandomGraph(10, 20, 2, 1, seed);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(g));
    for (const uint32_t support : {2u, 3u}) {
      const FsmResult result =
          RunFsm(graph, support, /*max_edges=*/3, SmallCluster());
      const auto expected = brute::FsmFrequentPatterns(g, support, 3);
      std::map<Pattern, uint64_t> got(result.frequent.begin(),
                                      result.frequent.end());
      EXPECT_EQ(got.size(), expected.size())
          << "seed=" << seed << " support=" << support;
      for (const auto& [pattern, mni] : expected) {
        ASSERT_TRUE(got.count(pattern)) << pattern.ToString();
        EXPECT_EQ(got.at(pattern), mni) << pattern.ToString();
      }
    }
  }
}

TEST(FsmTest, HigherSupportFindsFewerPatterns) {
  const Graph g = GenerateRandomGraph(30, 70, 3, 1, 81);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  size_t previous = SIZE_MAX;
  for (const uint32_t support : {2u, 4u, 8u}) {
    const FsmResult result = RunFsm(graph, support, 2, SmallCluster());
    EXPECT_LE(result.frequent.size(), previous);
    previous = result.frequent.size();
  }
}

TEST(QueriesTest, SeedQueriesWellFormed) {
  for (uint32_t q = 1; q <= kNumSeedQueries; ++q) {
    const Pattern pattern = SeedQuery(q);
    EXPECT_TRUE(pattern.IsConnected()) << SeedQueryName(q);
    EXPECT_GE(pattern.NumVertices(), 3u);
  }
  EXPECT_TRUE(SeedQuery(4).IsClique());
  EXPECT_TRUE(SeedQuery(5).IsClique());
  EXPECT_EQ(SeedQuery(8).NumEdges(), 9u);  // K5 minus an edge
}

TEST(QueriesTest, MatchesBruteForce) {
  const Graph g = GenerateRandomGraph(13, 36, 1, 1, 91);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  for (uint32_t q = 1; q <= kNumSeedQueries; ++q) {
    const Pattern pattern = SeedQuery(q);
    EXPECT_EQ(CountQueryMatches(graph, pattern, SmallCluster()),
              brute::CountPatternMatches(g, pattern))
        << SeedQueryName(q);
  }
}

TEST(QueriesTest, TriangleQueryAgreesWithCliques) {
  const Graph g = GenerateRandomGraph(25, 90, 1, 1, 95);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  EXPECT_EQ(CountQueryMatches(graph, SeedQuery(1), SmallCluster()),
            CountTriangles(graph, SmallCluster()));
}

TEST(FsmTest, TransparentReductionPreservesResults) {
  for (const uint64_t seed : {201u, 202u, 203u}) {
    const Graph g = GenerateRandomGraph(24, 55, 3, 2, seed);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(g));
    for (const uint32_t support : {2u, 4u}) {
      FsmOptions plain;
      plain.min_support = support;
      plain.max_edges = 3;
      FsmOptions reducing = plain;
      reducing.transparent_graph_reduction = true;

      const FsmResult base = RunFsmWithOptions(graph, plain, SmallCluster());
      const FsmResult reduced =
          RunFsmWithOptions(graph, reducing, SmallCluster());
      EXPECT_LE(reduced.mined_graph_edges, base.mined_graph_edges);
      std::map<Pattern, uint64_t> base_map(base.frequent.begin(),
                                           base.frequent.end());
      std::map<Pattern, uint64_t> reduced_map(reduced.frequent.begin(),
                                              reduced.frequent.end());
      EXPECT_EQ(base_map, reduced_map)
          << "seed=" << seed << " support=" << support;
    }
  }
}

TEST(FsmTest, TransparentReductionShrinksWorkOnSkewedLabels) {
  // Rare labels make most edges infrequent: the reduced graph is smaller
  // and the mining does less extension work.
  PowerLawParams params;
  params.num_vertices = 600;
  params.edges_per_vertex = 4;
  params.num_vertex_labels = 12;
  params.label_skew = 1.2;  // spread labels -> many infrequent edges
  params.seed = 77;
  const Graph g = GeneratePowerLaw(params);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  FsmOptions plain;
  plain.min_support = 40;
  plain.max_edges = 3;
  FsmOptions reducing = plain;
  reducing.transparent_graph_reduction = true;

  const FsmResult base = RunFsmWithOptions(graph, plain, SmallCluster());
  const FsmResult reduced =
      RunFsmWithOptions(graph, reducing, SmallCluster());
  std::map<Pattern, uint64_t> base_map(base.frequent.begin(),
                                       base.frequent.end());
  std::map<Pattern, uint64_t> reduced_map(reduced.frequent.begin(),
                                          reduced.frequent.end());
  EXPECT_EQ(base_map, reduced_map);
  EXPECT_LT(reduced.mined_graph_edges, g.NumEdges() / 2);
}

Graph SmallAttributedGraph() {
  // Path 0-1-2-3 with keywords: edges carry distinct topic keywords.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  const EdgeId e01 = b.AddEdge(0, 1);
  const EdgeId e12 = b.AddEdge(1, 2);
  const EdgeId e23 = b.AddEdge(2, 3);
  b.SetEdgeKeywords(e01, {100});
  b.SetEdgeKeywords(e12, {200});
  b.SetEdgeKeywords(e23, {100, 200});
  b.SetVertexKeywords(0, {300});
  return std::move(b).Build();
}

TEST(KeywordSearchTest, InvertedIndexCoversEndpointKeywords) {
  const Graph g = SmallAttributedGraph();
  const InvertedIndex index(g);
  // Edge (0,1) contains 100 directly and 300 via endpoint 0.
  EXPECT_TRUE(index.EdgeContains(100, 0));
  EXPECT_TRUE(index.EdgeContains(300, 0));
  EXPECT_FALSE(index.EdgeContains(200, 0));
  EXPECT_EQ(index.EdgesWithKeyword(200).size(), 2u);
}

TEST(KeywordSearchTest, FindsCoveringSubgraphs) {
  const Graph g = SmallAttributedGraph();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  const std::vector<uint32_t> query = {100, 200};
  const KeywordSearchResult result =
      RunKeywordSearch(graph, query, /*use_graph_reduction=*/false,
                       SmallCluster());
  // Connected 2-edge covering subgraphs where, in enumeration order, every
  // added edge contributed a keyword not seen before (Listing 4's
  // candidate-retrieval semantics): {e01,e12} (100 then 200) and {e12,e23}
  // (200 then 100). {e01,e23} is disconnected and never enumerated.
  EXPECT_EQ(result.num_matches, 2u);
}

TEST(KeywordSearchTest, ReductionPreservesResults) {
  const Graph g = AttachKeywords(GenerateRandomGraph(60, 150, 1, 1, 7),
                                 /*vocabulary_size=*/50, 1, 3, 2.0, 99);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  const std::vector<uint32_t> query = {3, 17};
  const KeywordSearchResult full =
      RunKeywordSearch(graph, query, false, SmallCluster());
  const KeywordSearchResult reduced =
      RunKeywordSearch(graph, query, true, SmallCluster());
  EXPECT_EQ(full.num_matches, reduced.num_matches);
  EXPECT_LE(reduced.graph_edges, full.graph_edges);
  EXPECT_LE(reduced.extension_cost, full.extension_cost);
}

}  // namespace
}  // namespace fractal
