// AllocGuard unit tests: scope counting, nesting, Allow suppression,
// thread-locality, the process-wide totals, and the abort backstop. Every
// test skips itself when the interposing operator new/delete runtime is
// compiled out (FRACTAL_ENABLE_ALLOC_GUARD=OFF).
#include "util/alloc_guard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

namespace fractal {
namespace {

// TSan's runtime forks poorly; the death test opts out under it.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

// Heap traffic the optimizer cannot elide.
void* AllocateVisible(size_t n) {
  void* p = ::operator new(n);
  static_cast<volatile char*>(p)[0] = 1;
  return p;
}

class AllocGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!AllocGuard::Active()) {
      GTEST_SKIP() << "alloc-guard runtime compiled out";
    }
  }
};

TEST_F(AllocGuardTest, CountsAllocationsBytesAndFrees) {
  AllocGuard guard(AllocGuard::Mode::kCount);
  void* p = AllocateVisible(64);
  const uint64_t after_alloc = guard.allocations();
  const uint64_t bytes = guard.bytes();
  ::operator delete(p);
  EXPECT_GE(after_alloc, 1u);
  EXPECT_GE(bytes, 64u);
  EXPECT_GE(guard.frees(), 1u);
}

TEST_F(AllocGuardTest, OffModeObservesNothing) {
  AllocGuard guard(AllocGuard::Mode::kOff);
  ::operator delete(AllocateVisible(32));
  EXPECT_EQ(guard.allocations(), 0u);
  EXPECT_EQ(guard.bytes(), 0u);
  EXPECT_EQ(guard.frees(), 0u);
}

TEST_F(AllocGuardTest, AllowSuspendsObservation) {
  AllocGuard guard(AllocGuard::Mode::kCount);
  {
    AllocGuard::Allow allow("audited test allocation");
    ::operator delete(AllocateVisible(32));
  }
  EXPECT_EQ(guard.allocations(), 0u);
  ::operator delete(AllocateVisible(32));
  EXPECT_GE(guard.allocations(), 1u);
}

TEST_F(AllocGuardTest, NestedScopesAccumulateIntoOuter) {
  AllocGuard outer(AllocGuard::Mode::kCount);
  ::operator delete(AllocateVisible(16));
  const uint64_t outer_before_inner = outer.allocations();
  uint64_t inner_count = 0;
  {
    AllocGuard inner(AllocGuard::Mode::kCount);
    ::operator delete(AllocateVisible(16));
    inner_count = inner.allocations();
  }
  EXPECT_GE(outer_before_inner, 1u);
  EXPECT_GE(inner_count, 1u);
  // The outer scope saw its own allocation plus everything the inner saw.
  EXPECT_GE(outer.allocations(), outer_before_inner + inner_count);
}

TEST_F(AllocGuardTest, ScopesAreThreadLocal) {
  std::atomic<int> phase{0};
  std::thread other([&] {
    while (phase.load(std::memory_order_acquire) < 1) std::this_thread::yield();
    ::operator delete(AllocateVisible(1024));  // unguarded: other thread
    phase.store(2, std::memory_order_release);
  });
  {
    AllocGuard guard(AllocGuard::Mode::kCount);
    phase.store(1, std::memory_order_release);
    while (phase.load(std::memory_order_acquire) < 2) std::this_thread::yield();
    EXPECT_EQ(guard.allocations(), 0u)
        << "a guard on this thread observed another thread's allocation";
  }
  other.join();
}

TEST_F(AllocGuardTest, GuardedOnThisThreadTracksScopeAndAllow) {
  EXPECT_FALSE(AllocGuard::GuardedOnThisThread());
  {
    AllocGuard guard(AllocGuard::Mode::kCount);
    EXPECT_TRUE(AllocGuard::GuardedOnThisThread());
    {
      AllocGuard::Allow allow("suspension");
      EXPECT_FALSE(AllocGuard::GuardedOnThisThread());
    }
    EXPECT_TRUE(AllocGuard::GuardedOnThisThread());
  }
  EXPECT_FALSE(AllocGuard::GuardedOnThisThread());
}

TEST_F(AllocGuardTest, TotalGuardedAllocationsAccumulates) {
  const uint64_t before = AllocGuard::TotalGuardedAllocations();
  {
    AllocGuard guard(AllocGuard::Mode::kCount);
    ::operator delete(AllocateVisible(8));
  }
  EXPECT_GE(AllocGuard::TotalGuardedAllocations(), before + 1);
}

TEST_F(AllocGuardTest, GlobalModeRoundTrips) {
  const AllocGuard::Mode prior = AllocGuard::GlobalMode();
  AllocGuard::SetGlobalMode(AllocGuard::Mode::kCount);
  EXPECT_EQ(AllocGuard::GlobalMode(), AllocGuard::Mode::kCount);
  AllocGuard::SetGlobalMode(prior);
  EXPECT_EQ(AllocGuard::GlobalMode(), prior);
}

TEST_F(AllocGuardTest, WarmupUnitsIsPositive) {
  EXPECT_GT(AllocGuard::warmup_units(), 0u);
}

TEST_F(AllocGuardTest, AbortModeAbortsOnAllocation) {
  if (kTsan) GTEST_SKIP() << "death tests are unreliable under TSan";
  EXPECT_DEATH(
      {
        AllocGuard guard(AllocGuard::Mode::kAbort);
        ::operator delete(AllocateVisible(8));
      },
      "AllocGuard: heap allocation on a guarded hot path");
}

TEST_F(AllocGuardTest, AbortModeHonorsAllow) {
  AllocGuard guard(AllocGuard::Mode::kAbort);
  AllocGuard::Allow allow("audited: must not abort");
  ::operator delete(AllocateVisible(8));  // process survives => pass
}

}  // namespace
}  // namespace fractal
